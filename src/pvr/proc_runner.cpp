#include "pvr/proc_runner.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/engine.hpp"
#include "core/fold.hpp"
#include "core/reference.hpp"
#include "core/worker_pool.hpp"
#include "core/timeline.hpp"
#include "mp/communicator.hpp"
#include "mp/socket.hpp"
#include "mp/socket_transport.hpp"
#include "mp/supervisor.hpp"
#include "pvr/recovery.hpp"
#include "pvr/serialize.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "render/splatting.hpp"
#include "volume/partition.hpp"

namespace slspvr::pvr {

namespace {

/// kReport payload discriminators (the frame's tag field).
constexpr int kReportState = 1;      ///< counters + traffic records + wall clock
constexpr int kReportImage = 2;      ///< rank 0's gathered final frame
constexpr int kReportFailure = 3;    ///< stage, primary flag, reason
constexpr int kReportSnapshots = 4;  ///< retained per-stage partials
constexpr int kReportSubimage = 5;   ///< sequence mode, demoted roster: the
                                     ///< rank's rendered subimage (the parent
                                     ///< folds the frame out from these)

/// Execute a planted process-level crash. kExit does not return.
void trigger_crash(const ProcCrash& crash) {
  switch (crash.kind) {
    case ProcCrash::Kind::kSigstop:
      (void)::raise(SIGSTOP);
      break;
    case ProcCrash::Kind::kSigsegv:
      (void)::raise(SIGSEGV);
      break;
    case ProcCrash::Kind::kExit:
      std::_Exit(crash.exit_code);
    case ProcCrash::Kind::kSigkill:
      (void)::raise(SIGKILL);
      break;
  }
}

void ship_state(mp::SocketTransport& sock, int rank, const mp::CommContext& ctx,
                const core::Counters& counters, double wall_ms) {
  ByteWriter w;
  write_counters(w, counters);
  const auto& sent = ctx.trace.sent(rank);
  w.u32(static_cast<std::uint32_t>(sent.size()));
  for (const mp::MessageRecord& rec : sent) write_record(w, rec);
  const auto& received = ctx.trace.received(rank);
  w.u32(static_cast<std::uint32_t>(received.size()));
  for (const mp::MessageRecord& rec : received) write_record(w, rec);
  const auto& clock = ctx.trace.clock(rank);
  w.u32(static_cast<std::uint32_t>(clock.size()));
  for (const std::uint64_t c : clock) w.u64(c);
  w.u64(ctx.trace.naks(rank));
  w.u64(ctx.trace.retry_messages(rank));
  w.u64(ctx.trace.retry_bytes(rank));
  w.u64(ctx.trace.abandoned(rank));
  w.f64(wall_ms);
  sock.send_report(kReportState, w.data());
}

void ship_failure(mp::SocketTransport& sock, int stage, bool primary,
                  const std::string& what, const SnapshotStore& store, int rank) {
  {
    ByteWriter w;
    w.i32(stage);
    w.u8(primary ? 1 : 0);
    w.str(what);
    sock.send_report(kReportFailure, w.data());
  }
  {
    ByteWriter w;
    const auto& snaps = store.slots(rank);
    w.u32(static_cast<std::uint32_t>(snaps.size()));
    for (const SnapshotStore::Snap& snap : snaps) {
      w.i32(snap.stage);
      write_rect(w, snap.region);
      write_image(w, snap.image);
    }
    sock.send_report(kReportSnapshots, w.data());
  }
}

/// The forked child's whole life. Mirrors run_attempt's SPMD body exactly —
/// same composite + gather_final calls — so a clean multi-process frame is
/// byte-identical to the in-process one.
int worker_main(int rank, const mp::Endpoint& endpoint, const core::Compositor& method,
                const std::vector<img::Image>& subimages, const core::SwapOrder& order,
                const ProcOptions& opts) {
  mp::Fd link;
  try {
    link = mp::connect_with_backoff(endpoint, opts.connect, rank);
  } catch (...) {
    return mp::kWorkerExitConnect;  // typed RetryExhaustedError upstream
  }

  try {
    {
      mp::Frame hello;
      hello.kind = mp::FrameKind::kHello;
      hello.source = rank;
      mp::send_all(link.get(), mp::pack_frame(hello));
    }

    const int ranks = static_cast<int>(subimages.size());
    mp::CommContext ctx(ranks);
    ctx.mailboxes[static_cast<std::size_t>(rank)].set_capacity(opts.inbox_capacity);
    mp::SocketTransport::Options topts;
    topts.backend = opts.transport;
    topts.heartbeat_interval = opts.heartbeat_interval;
    auto transport =
        std::make_unique<mp::SocketTransport>(&ctx, rank, std::move(link), std::move(topts));
    mp::SocketTransport* sock = transport.get();
    ctx.transport = std::move(transport);
    ctx.stage_observer = [sock, &opts](int r, int stage) {
      sock->note_stage(stage);
      if (opts.crash && opts.crash->rank == r && opts.crash->stage == stage) {
        // A *real* crash, not an injected exception: the process dies (or
        // goes silent) mid-frame and the supervisor finds out the hard way.
        trigger_crash(*opts.crash);
      }
    };
    sock->start();

    // This process IS one rank: one explicit engine context for its frame.
    core::EngineConfig econfig;
    if (opts.workers_per_rank > 0) econfig.workers_per_rank = opts.workers_per_rank;
    core::EngineContext engine(econfig);

    SnapshotStore store(ranks);
    mp::Comm comm(&ctx, rank);
    core::Counters counters;
    img::Image local = subimages[static_cast<std::size_t>(rank)];  // methods mutate

    try {
      const RetentionGuard retention(&store);
      const auto t0 = std::chrono::steady_clock::now();
      const core::Ownership owned = method.composite(comm, local, order, counters, engine);
      img::Image gathered = core::gather_final(comm, local, owned, /*root=*/0);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      ship_state(*sock, rank, ctx, counters, wall_ms);
      if (rank == 0) {
        ByteWriter w;
        write_image(w, gathered);
        sock->send_report(kReportImage, w.data());
      }
      sock->goodbye_and_wait(opts.drain_deadline);
      return mp::kWorkerExitClean;
    } catch (const mp::PeerFailedError& e) {
      // Secondary casualty: a peer's already-known death aborted this rank.
      // Ship the retained partials so the supervisor can repair mid-frame.
      ship_failure(*sock, ctx.trace.stage(rank), /*primary=*/false, e.what(), store, rank);
      sock->goodbye_and_wait(opts.drain_deadline);
      return mp::kWorkerExitAborted;
    } catch (const std::exception& e) {
      // Primary failure of this rank: announce it (the supervisor broadcasts
      // kPeerFailed so the survivors abort), then ship the evidence.
      const int stage = ctx.trace.stage(rank);
      sock->announce_failure(stage, e.what());
      ship_failure(*sock, stage, /*primary=*/true, e.what(), store, rank);
      sock->goodbye_and_wait(opts.drain_deadline);
      return mp::kWorkerExitError;
    }
  } catch (...) {
    return mp::kWorkerExitError;
  }
}

mp::Endpoint make_endpoint(const ProcOptions& opts) {
  if (opts.endpoint_override) return mp::parse_endpoint(*opts.endpoint_override);
  mp::Endpoint ep;
  if (opts.transport == "tcp") {
    ep.kind = mp::Endpoint::Kind::kTcp;
    ep.host = "127.0.0.1";
    ep.port = 0;  // ephemeral; resolved by the supervisor's listen
    return ep;
  }
  if (opts.transport != "unix") {
    throw std::invalid_argument("ProcOptions.transport must be \"unix\" or \"tcp\", got \"" +
                                opts.transport + "\"");
  }
  // One live supervisor per path: the pid disambiguates concurrent test
  // binaries, the counter disambiguates runs within this process.
  static int counter = 0;
  ep.kind = mp::Endpoint::Kind::kUnix;
  ep.path = "/tmp/slspvr-" + std::to_string(::getpid()) + "-" + std::to_string(counter++) +
            ".sock";
  return ep;
}

/// One worker's kReportFailure payload, decoded.
struct WorkerFailureReport {
  int rank = -1;
  int stage = 0;
  bool primary = false;
  std::string what;
};

/// Everything the parent can decode out of one batch of worker reports
/// (one full run, or one frame of a sequence).
struct DecodedReports {
  std::vector<core::Counters> counters;
  std::vector<bool> have_state;
  std::vector<double> walls;
  std::optional<img::Image> final_image;
  std::vector<WorkerFailureReport> worker_failures;
  SnapshotStore store;
  mp::TrafficTrace trace;
  /// kReportSubimage per rank (sequence mode, demoted roster only).
  std::vector<std::optional<img::Image>> subimages;

  explicit DecodedReports(int ranks)
      : counters(static_cast<std::size_t>(ranks)),
        have_state(static_cast<std::size_t>(ranks), false),
        walls(static_cast<std::size_t>(ranks), 0.0),
        store(ranks),
        trace(ranks),
        subimages(static_cast<std::size_t>(ranks)) {}
};

/// Decode a report stream. A report truncated by a dying worker is dropped
/// (its death is already a recorded failure); the frame CRC has vouched for
/// everything that parses.
DecodedReports decode_reports(const std::vector<mp::WorkerReport>& reports, int ranks) {
  DecodedReports dec(ranks);
  for (const mp::WorkerReport& rep : reports) {
    if (rep.rank < 0 || rep.rank >= ranks) continue;
    const std::size_t i = static_cast<std::size_t>(rep.rank);
    ByteReader r(rep.payload);
    try {
      switch (rep.kind) {
        case kReportState: {
          dec.counters[i] = read_counters(r);
          std::vector<mp::MessageRecord> sent(r.u32());
          for (mp::MessageRecord& rec : sent) rec = read_record(r);
          std::vector<mp::MessageRecord> received(r.u32());
          for (mp::MessageRecord& rec : received) rec = read_record(r);
          std::vector<std::uint64_t> clock(r.u32());
          for (std::uint64_t& c : clock) c = r.u64();
          const std::uint64_t naks = r.u64();
          const std::uint64_t retries = r.u64();
          const std::uint64_t retry_bytes = r.u64();
          const std::uint64_t abandoned = r.u64();
          dec.walls[i] = r.f64();
          dec.trace.import_rank(rep.rank, std::move(sent), std::move(received),
                                std::move(clock), naks, retries, retry_bytes, abandoned);
          dec.have_state[i] = true;
          break;
        }
        case kReportImage:
          dec.final_image = read_image(r);
          break;
        case kReportFailure: {
          WorkerFailureReport wf;
          wf.rank = rep.rank;
          wf.stage = r.i32();
          wf.primary = r.u8() != 0;
          wf.what = r.str();
          dec.worker_failures.push_back(std::move(wf));
          break;
        }
        case kReportSnapshots: {
          const std::uint32_t n = r.u32();
          for (std::uint32_t k = 0; k < n; ++k) {
            const int stage = r.i32();
            const img::Rect region = read_rect(r);
            dec.store.add(rep.rank, stage, read_image(r), region);
          }
          break;
        }
        case kReportSubimage:
          dec.subimages[i] = read_image(r);
          break;
        default:
          break;  // unknown report kind: forward compatibility, skip
      }
    } catch (const std::out_of_range&) {
      continue;
    }
  }
  return dec;
}

// ---- sequence mode ------------------------------------------------------

/// The camera for frame `f` of a sequence: the base view stepped per frame,
/// exactly as examples/rotation_sweep steps views. Pure, so a respawned
/// worker derives the same view as everyone else.
ExperimentConfig sequence_frame_config(const ExperimentConfig& base,
                                       const SequenceProcOptions& opts, int frame) {
  ExperimentConfig cfg = base;
  cfg.rot_x_deg = base.rot_x_deg + opts.rot_step_x * static_cast<float>(frame);
  cfg.rot_y_deg = base.rot_y_deg + opts.rot_step_y * static_cast<float>(frame);
  return cfg;
}

/// Partition + swap order for one frame's view — the Experiment constructor's
/// partitioning phase without the rendering phase. Deterministic in
/// (volume, config), which is what makes a respawned rank's world view
/// byte-identical to its dead predecessor's.
struct FrameGeometry {
  std::vector<vol::Brick> bricks;
  core::SwapOrder order;
  bool folded = false;
};

FrameGeometry derive_frame_geometry(const vol::Dataset& dataset, const ExperimentConfig& cfg) {
  const vol::Dims dims = dataset.volume.dims();
  render::OrthoCamera camera(dims, cfg.image_size, cfg.image_size, cfg.rot_x_deg,
                             cfg.rot_y_deg);
  float dir[3];
  camera.view_dir_array(dir);
  FrameGeometry geom;
  if (vol::is_power_of_two(cfg.ranks)) {
    const vol::KdPartition partition =
        cfg.balanced_partition ? vol::kd_partition_balanced(dataset.volume, cfg.ranks, 64)
                               : vol::kd_partition(dims, cfg.ranks);
    geom.bricks = partition.bricks;
    geom.order = core::make_swap_order(partition, dir);
  } else {
    geom.bricks = vol::slab_partition(dims, cfg.ranks, /*axis=*/0);
    geom.order = core::make_fold_order(cfg.ranks, /*axis=*/0, dir);
    geom.folded = true;
  }
  return geom;
}

/// Render one rank's brick for one frame's view (the sort-last rendering
/// phase, restricted to the caller's own brick).
img::Image render_one_brick(const vol::Dataset& dataset, const ExperimentConfig& cfg,
                            const vol::Brick& brick) {
  render::OrthoCamera camera(dataset.volume.dims(), cfg.image_size, cfg.image_size,
                             cfg.rot_x_deg, cfg.rot_y_deg);
  img::Image sub(cfg.image_size, cfg.image_size);
  if (cfg.use_splatting) {
    render::splat_brick(dataset.volume, dataset.tf, camera, brick, sub);
  } else {
    render::RaycastOptions options;
    options.step = cfg.step;
    render::render_brick(dataset.volume, dataset.tf, camera, brick, sub, options);
  }
  return sub;
}

/// Non-owning Transport adapter: a sequence worker's SocketTransport
/// outlives the per-frame CommContext, but CommContext::transport owns its
/// pointee — so each frame installs one of these instead.
class BorrowedTransport final : public mp::Transport {
 public:
  explicit BorrowedTransport(mp::SocketTransport* inner) : inner_(inner) {}
  [[nodiscard]] std::string_view name() const noexcept override { return inner_->name(); }
  [[nodiscard]] bool shared_memory() const noexcept override { return false; }
  void submit(int dest, mp::Message msg) override { inner_->submit(dest, std::move(msg)); }

 private:
  mp::SocketTransport* inner_;  ///< not owned; outlives every frame
};

/// A sequence worker's whole life (any incarnation): connect, hello with the
/// generation, then loop kFrameStart -> render own brick -> composite ->
/// kFrameDone until the supervisor says kShutdown. Every frame builds a
/// fresh CommContext, so per-channel seq spaces restart cleanly per frame
/// and per generation.
int sequence_worker_main(int rank, std::uint32_t generation, const mp::Endpoint& endpoint,
                         const core::Compositor& method, const vol::Dataset& dataset,
                         const ExperimentConfig& base, const SequenceProcOptions& opts) {
  mp::Fd link;
  try {
    link = mp::connect_with_backoff(endpoint, opts.proc.connect, rank);
  } catch (...) {
    return mp::kWorkerExitConnect;
  }

  try {
    {
      mp::Frame hello;
      hello.kind = mp::FrameKind::kHello;
      hello.source = rank;
      hello.generation = generation;
      mp::send_all(link.get(), mp::pack_frame(hello));
    }

    mp::SocketTransport::Options topts;
    topts.backend = opts.proc.transport;
    topts.heartbeat_interval = opts.proc.heartbeat_interval;
    topts.generation = generation;
    topts.sequence = true;
    mp::SocketTransport sock(/*ctx=*/nullptr, rank, std::move(link), std::move(topts));
    sock.start();

    // One explicit engine context for this rank, reused across the whole
    // frame sequence — scratch warms up on frame 0 and stays hot.
    core::EngineConfig econfig;
    if (opts.proc.workers_per_rank > 0) econfig.workers_per_rank = opts.proc.workers_per_rank;
    core::EngineContext engine(econfig);

    const int ranks = base.ranks;
    const core::FoldCompositor folded_method(method);

    for (;;) {
      const std::optional<mp::FrameRoster> roster = sock.await_frame_start(opts.frame_deadline);
      if (!roster) break;  // kShutdown, dead link, or frame deadline
      const int frame = roster->frame;
      const ExperimentConfig cfg = sequence_frame_config(base, opts, frame);
      const FrameGeometry geom = derive_frame_geometry(dataset, cfg);
      img::Image local =
          render_one_brick(dataset, cfg, geom.bricks[static_cast<std::size_t>(rank)]);

      if (!roster->demoted.empty()) {
        // Demoted roster: no full-strength plan exists anymore. Every
        // survivor ships its rendered subimage and the parent folds the
        // frame out degraded — the bottom rung of the recovery ladder.
        ByteWriter w;
        write_image(w, local);
        sock.send_report(kReportSubimage, w.data());
        sock.end_frame(frame, /*aborted=*/false);
        continue;
      }

      mp::CommContext ctx(ranks);
      ctx.mailboxes[static_cast<std::size_t>(rank)].set_capacity(opts.proc.inbox_capacity);
      ctx.transport = std::make_unique<BorrowedTransport>(&sock);
      ctx.stage_observer = [&sock, &opts, frame](int r, int stage) {
        sock.note_stage(stage);
        for (const ProcCrash& crash : opts.crashes) {
          if (crash.rank == r && crash.stage == stage &&
              (crash.frame < 0 || crash.frame == frame)) {
            trigger_crash(crash);
          }
        }
      };

      SnapshotStore store(ranks);
      sock.begin_frame(&ctx);
      bool aborted = false;
      try {
        const RetentionGuard retention(&store);
        mp::Comm comm(&ctx, rank);
        core::Counters counters;
        const core::Compositor& frame_method =
            geom.folded ? static_cast<const core::Compositor&>(folded_method) : method;
        const auto t0 = std::chrono::steady_clock::now();
        const core::Ownership owned =
            frame_method.composite(comm, local, geom.order, counters, engine);
        img::Image gathered = core::gather_final(comm, local, owned, /*root=*/0);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();
        ship_state(sock, rank, ctx, counters, wall_ms);
        if (rank == 0) {
          ByteWriter w;
          write_image(w, gathered);
          sock.send_report(kReportImage, w.data());
        }
      } catch (const mp::PeerFailedError& e) {
        aborted = true;
        ship_failure(sock, ctx.trace.stage(rank), /*primary=*/false, e.what(), store, rank);
      } catch (const std::exception& e) {
        aborted = true;
        const int stage = ctx.trace.stage(rank);
        sock.announce_failure(stage, e.what());
        ship_failure(sock, stage, /*primary=*/true, e.what(), store, rank);
      }
      sock.end_frame(frame, aborted);
    }

    if (sock.link_lost()) return mp::kWorkerExitError;
    sock.goodbye_and_wait(opts.proc.drain_deadline);
    return mp::kWorkerExitClean;
  } catch (...) {
    return mp::kWorkerExitError;
  }
}

}  // namespace

FtMethodResult run_compositing_procs(const core::Compositor& method,
                                     const std::vector<img::Image>& subimages,
                                     const core::SwapOrder& order, const ProcOptions& opts,
                                     const core::CostModel& model) {
  const int ranks = static_cast<int>(subimages.size());
  if (ranks <= 0) throw std::invalid_argument("run_compositing_procs: no subimages");

  mp::SupervisorOptions sup;
  sup.endpoint = make_endpoint(opts);
  sup.procs = ranks;
  sup.heartbeat_timeout = opts.heartbeat_timeout;
  sup.accept_deadline = opts.accept_deadline;
  sup.drain_deadline = opts.drain_deadline;

  const mp::SupervisorOutcome outcome = mp::Supervisor::run(
      sup, [&](int rank, const mp::Endpoint& at) {
        return worker_main(rank, at, method, subimages, order, opts);
      });
  if (sup.endpoint.kind == mp::Endpoint::Kind::kUnix) (void)::unlink(sup.endpoint.path.c_str());

  DecodedReports dec = decode_reports(outcome.reports, ranks);

  FtMethodResult out;
  out.report.retry_stats += dec.trace.retry_stats();

  if (outcome.clean()) {
    if (!dec.final_image ||
        !std::all_of(dec.have_state.begin(), dec.have_state.end(), [](bool b) { return b; })) {
      throw mp::TransportError(
          "run_compositing_procs: clean supervisor outcome but incomplete worker reports");
    }
    MethodResult& result = out.result;
    result.method = std::string(method.name());
    result.per_rank = std::move(dec.counters);
    result.times = model.critical_path(result.per_rank, dec.trace);
    result.timeline = core::simulate_timeline(result.per_rank, dec.trace, model);
    result.m_max = core::max_received_message_bytes(dec.trace);
    result.received_bytes_per_rank.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      result.received_bytes_per_rank[static_cast<std::size_t>(r)] =
          core::received_message_bytes(dec.trace, r);
    }
    result.wall_ms = *std::max_element(dec.walls.begin(), dec.walls.end());
    result.final_image = std::move(*dec.final_image);
    return out;
  }

  // Real failures: seed the report with the supervisor's provenance (attempt
  // 0), add the survivors' secondary aborts from their own reports (primary
  // worker reports duplicate the supervisor's kFailed record — skip), and
  // finish the frame in this process from the shipped snapshots.
  out.report.faulted = true;
  std::vector<bool> failed(static_cast<std::size_t>(ranks), false);
  for (const mp::WorkerFailure& f : outcome.failures) {
    if (f.rank < 0 || f.rank >= ranks) continue;
    failed[static_cast<std::size_t>(f.rank)] = true;
    out.report.events.push_back({f.rank, f.stage, /*primary=*/true, /*attempt=*/0, f.what});
  }
  for (const WorkerFailureReport& wf : dec.worker_failures) {
    if (wf.primary) continue;
    out.report.events.push_back({wf.rank, wf.stage, /*primary=*/false, /*attempt=*/0, wf.what});
  }
  return recover_frame(method, subimages, order, model, dec.store, std::move(failed),
                       std::move(out.report));
}

FtMethodResult Experiment::run_procs(const core::Compositor& method,
                                     const ProcOptions& opts) const {
  const core::FoldCompositor folded(method);
  const core::Compositor* compositor = folded_ ? static_cast<const core::Compositor*>(&folded)
                                               : &method;
  return run_compositing_procs(*compositor, subimages_, order_, opts, config_.cost_model);
}

SequenceRunResult run_compositing_sequence(const core::Compositor& method,
                                           const vol::Dataset& dataset,
                                           const ExperimentConfig& base,
                                           const SequenceProcOptions& opts) {
  const int ranks = base.ranks;
  if (ranks <= 0) {
    throw std::invalid_argument("run_compositing_sequence: ranks must be positive");
  }
  if (opts.frames <= 0) {
    throw std::invalid_argument("run_compositing_sequence: frames must be positive");
  }

  mp::SupervisorOptions sup;
  sup.endpoint = make_endpoint(opts.proc);
  sup.procs = ranks;
  sup.heartbeat_timeout = opts.proc.heartbeat_timeout;
  sup.accept_deadline = opts.proc.accept_deadline;
  sup.drain_deadline = opts.proc.drain_deadline;

  mp::SequenceOptions seq;
  seq.frames = opts.frames;
  seq.respawn = opts.respawn;

  const mp::SequenceOutcome outcome = mp::Supervisor::run_sequence(
      sup, seq, [&](int rank, std::uint32_t generation, const mp::Endpoint& at) {
        return sequence_worker_main(rank, generation, at, method, dataset, base, opts);
      });
  if (sup.endpoint.kind == mp::Endpoint::Kind::kUnix) (void)::unlink(sup.endpoint.path.c_str());

  SequenceRunResult out;
  out.report.respawns = outcome.respawns;
  out.report.generations = outcome.generations;
  out.report.stale_rejects = outcome.stale_rejects;
  std::vector<bool> ever_failed(static_cast<std::size_t>(ranks), false);
  for (const int r : outcome.demoted) {
    if (r >= 0 && r < ranks) ever_failed[static_cast<std::size_t>(r)] = true;
  }

  for (const mp::FrameOutcome& fo : outcome.frames) {
    const ExperimentConfig cfg = sequence_frame_config(base, opts, fo.frame);
    DecodedReports dec = decode_reports(fo.reports, ranks);

    FtMethodResult ft;
    ft.report.retry_stats += dec.trace.retry_stats();
    // Failed resurrections between frames are provenance, not frame faults:
    // the frame that follows ran at whatever strength the roster says.
    for (const mp::WorkerFailure& f : fo.boundary_failures) {
      ft.report.events.push_back(
          {f.rank, f.stage, /*primary=*/true, /*attempt=*/0, "boundary: " + f.what});
    }

    if (!fo.demoted.empty()) {
      // Bottom rung: the roster is demoted, survivors shipped raw subimages,
      // and the parent folds the frame out here in depth order. A survivor
      // that died mid-frame (or whose subimage never arrived) is folded out
      // too — a blank subimage is the over-operator identity.
      const FrameGeometry geom = derive_frame_geometry(dataset, cfg);
      std::vector<bool> lost(static_cast<std::size_t>(ranks), false);
      for (const int r : fo.demoted) {
        if (r >= 0 && r < ranks) lost[static_cast<std::size_t>(r)] = true;
      }
      for (const mp::WorkerFailure& f : fo.failures) {
        ft.report.events.push_back({f.rank, f.stage, /*primary=*/true, /*attempt=*/0, f.what});
        if (f.rank >= 0 && f.rank < ranks) lost[static_cast<std::size_t>(f.rank)] = true;
      }
      std::vector<img::Image> subs;
      subs.reserve(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        const std::size_t i = static_cast<std::size_t>(r);
        if (!lost[i] && dec.subimages[i]) {
          subs.push_back(std::move(*dec.subimages[i]));
        } else {
          lost[i] = true;  // survivor whose subimage never arrived
          subs.emplace_back(cfg.image_size, cfg.image_size);
        }
      }
      ft.report.faulted = true;
      ft.report.degraded = true;
      const img::Rect full{0, 0, cfg.image_size, cfg.image_size};
      for (int r = 0; r < ranks; ++r) {
        if (!lost[static_cast<std::size_t>(r)]) continue;
        ft.report.failed_ranks.push_back(r);
        const img::Image sub =
            render_one_brick(dataset, cfg, geom.bricks[static_cast<std::size_t>(r)]);
        ft.report.pixels_lost += img::count_non_blank(sub, full);
      }
      ft.result.method = std::string(method.name());
      ft.result.final_image = core::composite_reference(subs, geom.order.front_to_back);
    } else if (fo.failures.empty()) {
      // Clean full-strength frame: assemble the MethodResult exactly as
      // run_compositing_procs does, so frame f is byte-identical to a
      // single-frame run of the same view.
      if (!dec.final_image ||
          !std::all_of(dec.have_state.begin(), dec.have_state.end(),
                       [](bool b) { return b; })) {
        throw mp::TransportError("run_compositing_sequence: clean frame " +
                                 std::to_string(fo.frame) + " but incomplete worker reports");
      }
      MethodResult& result = ft.result;
      result.method = std::string(method.name());
      result.per_rank = std::move(dec.counters);
      result.times = base.cost_model.critical_path(result.per_rank, dec.trace);
      result.timeline = core::simulate_timeline(result.per_rank, dec.trace, base.cost_model);
      result.m_max = core::max_received_message_bytes(dec.trace);
      result.received_bytes_per_rank.resize(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        result.received_bytes_per_rank[static_cast<std::size_t>(r)] =
            core::received_message_bytes(dec.trace, r);
      }
      result.wall_ms = *std::max_element(dec.walls.begin(), dec.walls.end());
      result.final_image = std::move(*dec.final_image);
    } else {
      // Mid-frame deaths at full strength: re-render the frame's subimages
      // here and run the single-frame recovery ladder (mid-frame plan repair
      // from shipped snapshots, else degraded recomposite).
      const FrameGeometry geom = derive_frame_geometry(dataset, cfg);
      std::vector<img::Image> subs;
      subs.reserve(static_cast<std::size_t>(ranks));
      for (const vol::Brick& brick : geom.bricks) {
        subs.push_back(render_one_brick(dataset, cfg, brick));
      }
      ft.report.faulted = true;
      std::vector<bool> failed(static_cast<std::size_t>(ranks), false);
      for (const mp::WorkerFailure& f : fo.failures) {
        ft.report.events.push_back({f.rank, f.stage, /*primary=*/true, /*attempt=*/0, f.what});
        if (f.rank >= 0 && f.rank < ranks) failed[static_cast<std::size_t>(f.rank)] = true;
      }
      for (const WorkerFailureReport& wf : dec.worker_failures) {
        if (wf.primary) continue;
        ft.report.events.push_back(
            {wf.rank, wf.stage, /*primary=*/false, /*attempt=*/0, wf.what});
      }
      const core::FoldCompositor folded(method);
      const core::Compositor& m =
          geom.folded ? static_cast<const core::Compositor&>(folded) : method;
      ft = recover_frame(m, subs, geom.order, base.cost_model, dec.store, std::move(failed),
                         std::move(ft.report));
    }

    out.report.faulted = out.report.faulted || ft.report.faulted;
    out.report.degraded = out.report.degraded || ft.report.degraded;
    out.report.resumed = out.report.resumed || ft.report.resumed;
    out.report.retries += ft.report.retries;
    out.report.pixels_lost += ft.report.pixels_lost;
    out.report.retry_stats += ft.report.retry_stats;
    for (const int r : ft.report.failed_ranks) {
      if (r >= 0 && r < ranks) ever_failed[static_cast<std::size_t>(r)] = true;
    }
    out.report.events.insert(out.report.events.end(), ft.report.events.begin(),
                             ft.report.events.end());
    out.frames.push_back(std::move(ft));
  }

  for (int r = 0; r < ranks; ++r) {
    if (ever_failed[static_cast<std::size_t>(r)]) out.report.failed_ranks.push_back(r);
  }
  return out;
}

}  // namespace slspvr::pvr
