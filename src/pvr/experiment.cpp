#include "pvr/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "core/binary_swap.hpp"
#include "core/binary_tree.hpp"
#include "core/bsbr.hpp"
#include "core/bsbrc.hpp"
#include "core/bsbrs.hpp"
#include "core/bslc.hpp"
#include "core/direct_send.hpp"
#include "core/fold.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/plan_compositor.hpp"
#include "core/reference.hpp"
#include "mp/runtime.hpp"
#include "pvr/distribute.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "render/splatting.hpp"

namespace slspvr::pvr {

Experiment::Experiment(const ExperimentConfig& config)
    : Experiment(vol::make_dataset(config.dataset, config.volume_scale), config) {}

Experiment::Experiment(const vol::Dataset& dataset, const ExperimentConfig& config)
    : config_(config) {
  if (config.ranks <= 0) throw std::invalid_argument("Experiment: ranks must be positive");

  const vol::Dims dims = dataset.volume.dims();

  render::OrthoCamera camera(dims, config.image_size, config.image_size, config.rot_x_deg,
                             config.rot_y_deg);
  float dir[3];
  camera.view_dir_array(dir);

  // Partitioning phase.
  if (vol::is_power_of_two(config.ranks)) {
    const vol::KdPartition partition =
        config.balanced_partition
            ? vol::kd_partition_balanced(dataset.volume, config.ranks, 64)
            : vol::kd_partition(dims, config.ranks);
    bricks_ = partition.bricks;
    order_ = core::make_swap_order(partition, dir);
    folded_ = false;
  } else {
    // Non-power-of-two: depth-ordered slabs along x + the fold extension.
    bricks_ = vol::slab_partition(dims, config.ranks, /*axis=*/0);
    order_ = core::make_fold_order(config.ranks, /*axis=*/0, dir);
    folded_ = true;
  }

  // Rendering phase. The distributed path executes the partitioning phase
  // over the message-passing runtime (rank 0 ships ghost bricks, PEs render
  // local-only); the default renders each brick against the shared volume —
  // identical images, no partition traffic to account.
  render::RaycastOptions options;
  options.step = config.step;
  if (config.distributed_partitioning && !config.use_splatting) {
    DistributedRender distributed =
        distribute_and_render(dataset.volume, dataset.tf, bricks_, camera, options);
    subimages_ = std::move(distributed.subimages);
    total_partition_bytes_ = distributed.total_partition_bytes;
    max_partition_bytes_ = distributed.max_partition_bytes;
    return;
  }
  subimages_.reserve(bricks_.size());
  for (const vol::Brick& brick : bricks_) {
    img::Image sub(config.image_size, config.image_size);
    if (config.use_splatting) {
      render::splat_brick(dataset.volume, dataset.tf, camera, brick, sub);
    } else {
      render::render_brick(dataset.volume, dataset.tf, camera, brick, sub, options);
    }
    subimages_.push_back(std::move(sub));
  }
}

img::Image Experiment::reference() const {
  return core::composite_reference(subimages_, order_.front_to_back);
}

namespace {

struct Attempt {
  MethodResult result;
  std::vector<mp::RankFailure> failures;
};

/// One SPMD execution under the given runtime options. On failure the
/// MethodResult is partial (no final image, partial counters) — callers
/// either rethrow or fold the failed ranks out and retry.
Attempt run_attempt(const core::Compositor& method, const std::vector<img::Image>& subimages,
                    const core::SwapOrder& order, const core::CostModel& model,
                    const mp::RunOptions& opts) {
  const int ranks = static_cast<int>(subimages.size());
  Attempt attempt;
  MethodResult& result = attempt.result;
  result.method = std::string(method.name());
  result.per_rank.assign(static_cast<std::size_t>(ranks), core::Counters{});

  img::Image final_image;
  std::mutex final_mutex;

  const auto t0 = std::chrono::steady_clock::now();
  const mp::RunResult run = mp::Runtime::run_tolerant(ranks, [&](mp::Comm& comm) {
    const int rank = comm.rank();
    img::Image local = subimages[static_cast<std::size_t>(rank)];  // methods mutate
    core::Counters& counters = result.per_rank[static_cast<std::size_t>(rank)];
    const core::Ownership owned = method.composite(comm, local, order, counters);
    img::Image gathered = core::gather_final(comm, local, owned, /*root=*/0);
    if (rank == 0) {
      const std::lock_guard lock(final_mutex);
      final_image = std::move(gathered);
    }
  }, opts);
  const auto t1 = std::chrono::steady_clock::now();

  attempt.failures = run.failures();
  if (!attempt.failures.empty()) return attempt;

  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.times = model.critical_path(result.per_rank, run.trace());
  result.timeline = core::simulate_timeline(result.per_rank, run.trace(), model);
  result.m_max = core::max_received_message_bytes(run.trace());
  result.received_bytes_per_rank.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    result.received_bytes_per_rank[static_cast<std::size_t>(r)] =
        core::received_message_bytes(run.trace(), r);
  }
  result.final_image = std::move(final_image);
  return attempt;
}

}  // namespace

MethodResult run_compositing(const core::Compositor& method,
                             const std::vector<img::Image>& subimages,
                             const core::SwapOrder& order, const core::CostModel& model) {
  Attempt attempt = run_attempt(method, subimages, order, model, {});
  // Preserve the historical contract: a rank failure in the plain entry
  // point rethrows the original (primary) exception after the join.
  for (const mp::RankFailure& f : attempt.failures) {
    if (f.primary) std::rethrow_exception(f.error);
  }
  if (!attempt.failures.empty()) std::rethrow_exception(attempt.failures.front().error);
  return std::move(attempt.result);
}

std::string FaultReport::summary() const {
  if (!faulted) return "no faults";
  std::string out = std::to_string(failed_ranks.size()) + " PE(s) failed (rank";
  for (const int r : failed_ranks) out += " " + std::to_string(r);
  out += "), " + std::to_string(pixels_lost) + " rendered pixel(s) lost, " +
         std::to_string(retries) + " retry round(s): " +
         (degraded ? "finished degraded from the survivors" : "frame lost");
  return out;
}

FtMethodResult run_compositing_ft(const core::Compositor& method,
                                  const std::vector<img::Image>& subimages,
                                  const core::SwapOrder& order, const mp::FaultPlan& faults,
                                  const core::CostModel& model) {
  const int ranks = static_cast<int>(subimages.size());
  FtMethodResult out;

  mp::FaultInjector injector(faults);
  mp::RunOptions opts;
  if (!faults.empty()) {
    opts.injector = &injector;
    opts.recv_timeout = faults.recv_timeout;
  }
  Attempt first = run_attempt(method, subimages, order, model, opts);
  if (first.failures.empty()) {
    out.result = std::move(first.result);
    return out;
  }

  out.report.faulted = true;
  std::vector<bool> failed(static_cast<std::size_t>(ranks), false);
  // `to_original[r]` maps an attempt-local rank to its original id.
  const auto absorb = [&](const std::vector<mp::RankFailure>& failures,
                          const std::vector<int>& to_original, int attempt_no) {
    for (const mp::RankFailure& f : failures) {
      const int original =
          to_original.empty() ? f.rank : to_original[static_cast<std::size_t>(f.rank)];
      out.report.events.push_back({original, f.stage, f.primary, attempt_no, f.what});
      if (f.primary) failed[static_cast<std::size_t>(original)] = true;
    }
  };
  absorb(first.failures, {}, 0);

  // Depth order of the original ranks (identity when the order carries no
  // explicit traversal, e.g. hand-built test orders).
  std::vector<int> depth_order(order.front_to_back.begin(), order.front_to_back.end());
  if (static_cast<int>(depth_order.size()) != ranks) {
    depth_order.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) depth_order[static_cast<std::size_t>(r)] = r;
  }

  // Degraded mode: fold the failed PEs out and recomposite the survivors in
  // their original depth order. The fold extension accepts any survivor
  // count; front-to-back survivor index i is simply slab i of the retry.
  const core::FoldCompositor folded(method);
  for (;;) {
    ++out.report.retries;
    std::vector<int> survivors;  // original ids, front to back
    for (const int r : depth_order) {
      if (!failed[static_cast<std::size_t>(r)]) survivors.push_back(r);
    }
    if (survivors.empty()) {
      // Every PE lost: deliver a structured report and a blank frame.
      out.result.method = std::string(method.name());
      out.result.final_image =
          img::Image(subimages.front().width(), subimages.front().height());
      break;
    }

    std::vector<img::Image> degraded_subs;
    degraded_subs.reserve(survivors.size());
    for (const int r : survivors) degraded_subs.push_back(subimages[static_cast<std::size_t>(r)]);
    const float view_dir[3] = {1.0f, 0.0f, 0.0f};  // ascending = front to back
    const core::SwapOrder degraded_order =
        core::make_fold_order(static_cast<int>(survivors.size()), /*axis=*/0, view_dir);

    // Retries run without the injector: the fault already materialised, and
    // re-applying rank-keyed rules to the renumbered survivors would be
    // meaningless. A retry can still fail (it reuses the full stack), in
    // which case its primary ranks are folded out too.
    Attempt retry = run_attempt(folded, degraded_subs, degraded_order, model, {});
    if (retry.failures.empty()) {
      out.report.degraded = true;
      out.result = std::move(retry.result);
      out.result.method = std::string(method.name()) + " [degraded]";
      break;
    }
    absorb(retry.failures, survivors, out.report.retries);
    const bool any_primary =
        std::any_of(retry.failures.begin(), retry.failures.end(),
                    [](const mp::RankFailure& f) { return f.primary; });
    if (!any_primary) {
      // Cannot make progress (should not happen: every failed retry has a
      // primary). Surface the original error rather than looping.
      std::rethrow_exception(retry.failures.front().error);
    }
  }

  for (int r = 0; r < ranks; ++r) {
    if (!failed[static_cast<std::size_t>(r)]) continue;
    out.report.failed_ranks.push_back(r);
    out.report.pixels_lost += img::count_non_blank(subimages[static_cast<std::size_t>(r)],
                                                   subimages[static_cast<std::size_t>(r)].bounds());
  }
  return out;
}

FtMethodResult Experiment::run_ft(const core::Compositor& method,
                                  const mp::FaultPlan& faults) const {
  const core::FoldCompositor folded(method);
  const core::Compositor* compositor = folded_ ? static_cast<const core::Compositor*>(&folded)
                                               : &method;
  return run_compositing_ft(*compositor, subimages_, order_, faults, config_.cost_model);
}

MethodResult Experiment::run(const core::Compositor& method) const {
  const core::FoldCompositor folded(method);
  const core::Compositor* compositor = folded_ ? static_cast<const core::Compositor*>(&folded)
                                               : &method;
  return run_compositing(*compositor, subimages_, order_, config_.cost_model);
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::paper_methods() {
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<core::BinarySwapCompositor>());
  methods.push_back(std::make_unique<core::BsbrCompositor>());
  methods.push_back(std::make_unique<core::BslcCompositor>());
  methods.push_back(std::make_unique<core::BsbrcCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::proposed_methods() {
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<core::BsbrCompositor>());
  methods.push_back(std::make_unique<core::BslcCompositor>());
  methods.push_back(std::make_unique<core::BsbrcCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::all_methods() {
  auto methods = paper_methods();
  methods.push_back(std::make_unique<core::BsbrsCompositor>());
  methods.push_back(std::make_unique<core::BinaryTreeCompositor>());
  methods.push_back(std::make_unique<core::DirectSendCompositor>(false));
  methods.push_back(std::make_unique<core::DirectSendCompositor>(true));
  methods.push_back(std::make_unique<core::ParallelPipelineCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::plan_combinations() {
  using core::CodecKind;
  using core::PlanCompositor;
  using core::PlanFamily;
  using core::TrackerKind;
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryBS", PlanFamily::kKary, CodecKind::kFullPixel, TrackerKind::kNone));
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryBR", PlanFamily::kKary, CodecKind::kBoundingRect, TrackerKind::kUnion));
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryBRC", PlanFamily::kKary, CodecKind::kRleRect, TrackerKind::kUnion));
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryLC", PlanFamily::kKary, CodecKind::kInterleavedRle, TrackerKind::kNone));
  methods.push_back(std::make_unique<PlanCompositor>(
      "Tree-BRC", PlanFamily::kBinaryTree, CodecKind::kRleRect, TrackerKind::kUnion));
  methods.push_back(std::make_unique<PlanCompositor>(
      "DirectSend-BRC", PlanFamily::kDirectSend, CodecKind::kRleRect, TrackerKind::kUnion));
  return methods;
}

}  // namespace slspvr::pvr
