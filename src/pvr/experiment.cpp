#include "pvr/experiment.hpp"

#include <chrono>
#include <mutex>
#include <stdexcept>

#include "core/binary_swap.hpp"
#include "core/binary_tree.hpp"
#include "core/bsbr.hpp"
#include "core/bsbrc.hpp"
#include "core/bsbrs.hpp"
#include "core/bslc.hpp"
#include "core/direct_send.hpp"
#include "core/fold.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/reference.hpp"
#include "mp/runtime.hpp"
#include "pvr/distribute.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "render/splatting.hpp"

namespace slspvr::pvr {

Experiment::Experiment(const ExperimentConfig& config)
    : Experiment(vol::make_dataset(config.dataset, config.volume_scale), config) {}

Experiment::Experiment(const vol::Dataset& dataset, const ExperimentConfig& config)
    : config_(config) {
  if (config.ranks <= 0) throw std::invalid_argument("Experiment: ranks must be positive");

  const vol::Dims dims = dataset.volume.dims();

  render::OrthoCamera camera(dims, config.image_size, config.image_size, config.rot_x_deg,
                             config.rot_y_deg);
  float dir[3];
  camera.view_dir_array(dir);

  // Partitioning phase.
  if (vol::is_power_of_two(config.ranks)) {
    const vol::KdPartition partition =
        config.balanced_partition
            ? vol::kd_partition_balanced(dataset.volume, config.ranks, 64)
            : vol::kd_partition(dims, config.ranks);
    bricks_ = partition.bricks;
    order_ = core::make_swap_order(partition, dir);
    folded_ = false;
  } else {
    // Non-power-of-two: depth-ordered slabs along x + the fold extension.
    bricks_ = vol::slab_partition(dims, config.ranks, /*axis=*/0);
    order_ = core::make_fold_order(config.ranks, /*axis=*/0, dir);
    folded_ = true;
  }

  // Rendering phase. The distributed path executes the partitioning phase
  // over the message-passing runtime (rank 0 ships ghost bricks, PEs render
  // local-only); the default renders each brick against the shared volume —
  // identical images, no partition traffic to account.
  render::RaycastOptions options;
  options.step = config.step;
  if (config.distributed_partitioning && !config.use_splatting) {
    DistributedRender distributed =
        distribute_and_render(dataset.volume, dataset.tf, bricks_, camera, options);
    subimages_ = std::move(distributed.subimages);
    total_partition_bytes_ = distributed.total_partition_bytes;
    max_partition_bytes_ = distributed.max_partition_bytes;
    return;
  }
  subimages_.reserve(bricks_.size());
  for (const vol::Brick& brick : bricks_) {
    img::Image sub(config.image_size, config.image_size);
    if (config.use_splatting) {
      render::splat_brick(dataset.volume, dataset.tf, camera, brick, sub);
    } else {
      render::render_brick(dataset.volume, dataset.tf, camera, brick, sub, options);
    }
    subimages_.push_back(std::move(sub));
  }
}

img::Image Experiment::reference() const {
  return core::composite_reference(subimages_, order_.front_to_back);
}

MethodResult run_compositing(const core::Compositor& method,
                             const std::vector<img::Image>& subimages,
                             const core::SwapOrder& order, const core::CostModel& model) {
  const int ranks = static_cast<int>(subimages.size());
  MethodResult result;
  result.method = std::string(method.name());
  result.per_rank.assign(static_cast<std::size_t>(ranks), core::Counters{});

  img::Image final_image;
  std::mutex final_mutex;

  const auto t0 = std::chrono::steady_clock::now();
  const mp::RunResult run = mp::Runtime::run(ranks, [&](mp::Comm& comm) {
    const int rank = comm.rank();
    img::Image local = subimages[static_cast<std::size_t>(rank)];  // methods mutate
    core::Counters& counters = result.per_rank[static_cast<std::size_t>(rank)];
    const core::Ownership owned = method.composite(comm, local, order, counters);
    img::Image gathered = core::gather_final(comm, local, owned, /*root=*/0);
    if (rank == 0) {
      const std::lock_guard lock(final_mutex);
      final_image = std::move(gathered);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.times = model.critical_path(result.per_rank, run.trace());
  result.timeline = core::simulate_timeline(result.per_rank, run.trace(), model);
  result.m_max = core::max_received_message_bytes(run.trace());
  result.received_bytes_per_rank.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    result.received_bytes_per_rank[static_cast<std::size_t>(r)] =
        core::received_message_bytes(run.trace(), r);
  }
  result.final_image = std::move(final_image);
  return result;
}

MethodResult Experiment::run(const core::Compositor& method) const {
  const core::FoldCompositor folded(method);
  const core::Compositor* compositor = folded_ ? static_cast<const core::Compositor*>(&folded)
                                               : &method;
  return run_compositing(*compositor, subimages_, order_, config_.cost_model);
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::paper_methods() {
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<core::BinarySwapCompositor>());
  methods.push_back(std::make_unique<core::BsbrCompositor>());
  methods.push_back(std::make_unique<core::BslcCompositor>());
  methods.push_back(std::make_unique<core::BsbrcCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::proposed_methods() {
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<core::BsbrCompositor>());
  methods.push_back(std::make_unique<core::BslcCompositor>());
  methods.push_back(std::make_unique<core::BsbrcCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::all_methods() {
  auto methods = paper_methods();
  methods.push_back(std::make_unique<core::BsbrsCompositor>());
  methods.push_back(std::make_unique<core::BinaryTreeCompositor>());
  methods.push_back(std::make_unique<core::DirectSendCompositor>(false));
  methods.push_back(std::make_unique<core::DirectSendCompositor>(true));
  methods.push_back(std::make_unique<core::ParallelPipelineCompositor>());
  return methods;
}

}  // namespace slspvr::pvr
