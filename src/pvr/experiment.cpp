#include "pvr/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "core/binary_swap.hpp"
#include "core/binary_tree.hpp"
#include "core/bsbr.hpp"
#include "core/bsbrc.hpp"
#include "core/bsbrs.hpp"
#include "core/bslc.hpp"
#include "core/direct_send.hpp"
#include "core/engine.hpp"
#include "core/fold.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/plan_compositor.hpp"
#include "core/reference.hpp"
#include "mp/runtime.hpp"
#include "pvr/distribute.hpp"
#include "pvr/recovery.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "render/splatting.hpp"

namespace slspvr::pvr {

Experiment::Experiment(const ExperimentConfig& config)
    : Experiment(vol::make_dataset(config.dataset, config.volume_scale), config) {}

Experiment::Experiment(const vol::Dataset& dataset, const ExperimentConfig& config)
    : config_(config) {
  if (config.ranks <= 0) throw std::invalid_argument("Experiment: ranks must be positive");

  const vol::Dims dims = dataset.volume.dims();

  render::OrthoCamera camera(dims, config.image_size, config.image_size, config.rot_x_deg,
                             config.rot_y_deg);
  float dir[3];
  camera.view_dir_array(dir);

  // Partitioning phase.
  if (vol::is_power_of_two(config.ranks)) {
    const vol::KdPartition partition =
        config.balanced_partition
            ? vol::kd_partition_balanced(dataset.volume, config.ranks, 64)
            : vol::kd_partition(dims, config.ranks);
    bricks_ = partition.bricks;
    order_ = core::make_swap_order(partition, dir);
    folded_ = false;
  } else {
    // Non-power-of-two: depth-ordered slabs along x + the fold extension.
    bricks_ = vol::slab_partition(dims, config.ranks, /*axis=*/0);
    order_ = core::make_fold_order(config.ranks, /*axis=*/0, dir);
    folded_ = true;
  }

  // Rendering phase. The distributed path executes the partitioning phase
  // over the message-passing runtime (rank 0 ships ghost bricks, PEs render
  // local-only); the default renders each brick against the shared volume —
  // identical images, no partition traffic to account.
  render::RaycastOptions options;
  options.step = config.step;
  if (config.distributed_partitioning && !config.use_splatting) {
    DistributedRender distributed =
        distribute_and_render(dataset.volume, dataset.tf, bricks_, camera, options);
    subimages_ = std::move(distributed.subimages);
    total_partition_bytes_ = distributed.total_partition_bytes;
    max_partition_bytes_ = distributed.max_partition_bytes;
    return;
  }
  subimages_.reserve(bricks_.size());
  for (const vol::Brick& brick : bricks_) {
    img::Image sub(config.image_size, config.image_size);
    if (config.use_splatting) {
      render::splat_brick(dataset.volume, dataset.tf, camera, brick, sub);
    } else {
      render::render_brick(dataset.volume, dataset.tf, camera, brick, sub, options);
    }
    subimages_.push_back(std::move(sub));
  }
}

img::Image Experiment::reference() const {
  return core::composite_reference(subimages_, order_.front_to_back);
}

MethodResult run_compositing(const core::Compositor& method,
                             const std::vector<img::Image>& subimages,
                             const core::SwapOrder& order, const core::CostModel& model,
                             const core::EngineConfig& engine, core::EngineArena* arena) {
  core::EngineArena local_arena(engine);
  if (arena == nullptr) arena = &local_arena;
  Attempt attempt = run_attempt(method, subimages, order, model, {}, nullptr, arena);
  // Preserve the historical contract: a rank failure in the plain entry
  // point rethrows the original (primary) exception after the join.
  for (const mp::RankFailure& f : attempt.failures) {
    if (f.primary) std::rethrow_exception(f.error);
  }
  if (!attempt.failures.empty()) std::rethrow_exception(attempt.failures.front().error);
  return std::move(attempt.result);
}

std::string FaultReport::summary() const {
  std::string healed;
  if (retry_stats.naks > 0 || retry_stats.retransmits > 0) {
    healed = "; transport healed " + std::to_string(retry_stats.retransmits) +
             " message(s), " + std::to_string(retry_stats.healed_bytes) + " byte(s) (" +
             std::to_string(retry_stats.naks) + " NAK(s))";
  }
  if (retry_stats.abandoned > 0) {
    healed += "; " + std::to_string(retry_stats.abandoned) +
              " channel(s) abandoned after retry exhaustion";
  }
  if (respawns > 0) {
    healed += "; resurrected " + std::to_string(respawns) + " worker incarnation(s)";
    if (stale_rejects > 0) {
      healed += ", " + std::to_string(stale_rejects) + " stale-generation frame(s) rejected";
    }
  }
  if (!faulted) return "no faults" + healed;
  std::string out = std::to_string(failed_ranks.size()) + " PE(s) failed (rank";
  for (const int r : failed_ranks) {
    out += ' ';
    out += std::to_string(r);
  }
  out += "), " + std::to_string(pixels_lost) + " rendered pixel(s) lost, " +
         std::to_string(retries) + " retry round(s): ";
  if (resumed) {
    out += "finished via mid-frame repair from epoch " + std::to_string(resume_epoch);
  } else if (degraded) {
    out += "finished degraded from the survivors";
  } else {
    out += "frame lost";
  }
  return out + healed;
}

FtMethodResult run_compositing_ft(const core::Compositor& method,
                                  const std::vector<img::Image>& subimages,
                                  const core::SwapOrder& order, const mp::FaultPlan& faults,
                                  const core::CostModel& model,
                                  const core::EngineConfig& engine, core::EngineArena* arena) {
  const int ranks = static_cast<int>(subimages.size());
  core::EngineArena local_arena(engine);
  if (arena == nullptr) arena = &local_arena;
  FtMethodResult out;

  mp::FaultInjector injector(faults);
  mp::RunOptions opts;
  opts.retry = faults.retry;
  if (!faults.empty()) {
    opts.injector = &injector;
    opts.recv_timeout = faults.recv_timeout;
  }
  // Retain per-stage partials only when faults can actually strike — the
  // clean path keeps its zero-copy fast path.
  SnapshotStore store(ranks);
  SnapshotStore* retain = faults.empty() ? nullptr : &store;
  Attempt first = run_attempt(method, subimages, order, model, opts, retain, arena);
  out.report.retry_stats += first.retry_stats;
  if (first.failures.empty()) {
    out.result = std::move(first.result);
    return out;
  }

  out.report.faulted = true;
  std::vector<bool> failed(static_cast<std::size_t>(ranks), false);
  for (const mp::RankFailure& f : first.failures) {
    out.report.events.push_back({f.rank, f.stage, f.primary, /*attempt=*/0, f.what});
    if (f.primary) failed[static_cast<std::size_t>(f.rank)] = true;
  }
  return recover_frame(method, subimages, order, model, store, std::move(failed),
                       std::move(out.report), arena);
}

FtMethodResult Experiment::run_ft(const core::Compositor& method,
                                  const mp::FaultPlan& faults) const {
  const core::FoldCompositor folded(method);
  const core::Compositor* compositor = folded_ ? static_cast<const core::Compositor*>(&folded)
                                               : &method;
  return run_compositing_ft(*compositor, subimages_, order_, faults, config_.cost_model,
                            config_.engine);
}

MethodResult Experiment::run(const core::Compositor& method) const {
  const core::FoldCompositor folded(method);
  const core::Compositor* compositor = folded_ ? static_cast<const core::Compositor*>(&folded)
                                               : &method;
  return run_compositing(*compositor, subimages_, order_, config_.cost_model, config_.engine);
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::paper_methods() {
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<core::BinarySwapCompositor>());
  methods.push_back(std::make_unique<core::BsbrCompositor>());
  methods.push_back(std::make_unique<core::BslcCompositor>());
  methods.push_back(std::make_unique<core::BsbrcCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::proposed_methods() {
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<core::BsbrCompositor>());
  methods.push_back(std::make_unique<core::BslcCompositor>());
  methods.push_back(std::make_unique<core::BsbrcCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::all_methods() {
  auto methods = paper_methods();
  methods.push_back(std::make_unique<core::BsbrsCompositor>());
  methods.push_back(std::make_unique<core::BinaryTreeCompositor>());
  methods.push_back(std::make_unique<core::DirectSendCompositor>(false));
  methods.push_back(std::make_unique<core::DirectSendCompositor>(true));
  methods.push_back(std::make_unique<core::ParallelPipelineCompositor>());
  return methods;
}

std::vector<std::unique_ptr<core::Compositor>> MethodSet::plan_combinations() {
  using core::CodecKind;
  using core::PlanCompositor;
  using core::PlanFamily;
  using core::TrackerKind;
  std::vector<std::unique_ptr<core::Compositor>> methods;
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryBS", PlanFamily::kKary, CodecKind::kFullPixel, TrackerKind::kNone));
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryBR", PlanFamily::kKary, CodecKind::kBoundingRect, TrackerKind::kUnion));
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryBRC", PlanFamily::kKary, CodecKind::kRleRect, TrackerKind::kUnion));
  methods.push_back(std::make_unique<PlanCompositor>(
      "KaryLC", PlanFamily::kKary, CodecKind::kInterleavedRle, TrackerKind::kNone));
  methods.push_back(std::make_unique<PlanCompositor>(
      "Tree-BRC", PlanFamily::kBinaryTree, CodecKind::kRleRect, TrackerKind::kUnion));
  methods.push_back(std::make_unique<PlanCompositor>(
      "DirectSend-BRC", PlanFamily::kDirectSend, CodecKind::kRleRect, TrackerKind::kUnion));
  return methods;
}

}  // namespace slspvr::pvr
