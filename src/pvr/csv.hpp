// CSV export of experiment results — machine-readable counterpart of the
// TextTable output, for plotting the regenerated tables/figures.
#pragma once

#include <string>
#include <vector>

#include "pvr/experiment.hpp"

namespace slspvr::pvr {

/// RFC 4180 field escaping: fields containing a comma, double quote or line
/// break are wrapped in double quotes with embedded quotes doubled; all
/// other fields are returned verbatim.
[[nodiscard]] std::string csv_field(const std::string& value);

/// Accumulates MethodResult rows and writes one CSV file. Columns:
/// dataset,image,ranks,method,comp_ms,comm_ms,total_ms,timeline_ms,
/// wait_ms,m_max_bytes,wall_ms,naks,retransmits,healed_bytes,respawns,
/// stale_rejects
/// naks/retransmits/healed_bytes are the reliable transport's RetryStats;
/// respawns/stale_rejects are the sequence runner's resurrection accounting.
/// All zero for plain runs (or runs where nothing needed healing).
class CsvWriter {
 public:
  void add(const std::string& dataset, int image_size, int ranks,
           const MethodResult& result);

  /// Fault-tolerant row: same columns, with the report's RetryStats filled.
  void add(const std::string& dataset, int image_size, int ranks,
           const FtMethodResult& result);

  /// Write all accumulated rows (with header) to `path`; throws on IO error.
  void write(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> rows_;
};

}  // namespace slspvr::pvr
