// Byte-exact serialization for worker reports crossing the socket backend.
//
// Workers ship their results to the supervisor as kReport frame payloads;
// the acceptance bar for the multi-process backend is a *byte-identical*
// final frame, so every float crosses the wire as its IEEE-754 bit pattern
// (memcpy through uint32), never through text formatting. All integers are
// little-endian fixed-width, matching the SLP1 envelope convention.
//
// ByteReader is defensive: every accessor bounds-checks and throws
// std::out_of_range on underflow, so a truncated or hostile payload is a
// typed error in the supervisor, not a read past the buffer (the CRC32C on
// the enclosing frame already catches corruption; this catches logic bugs
// and version skew).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/counters.hpp"
#include "image/image.hpp"
#include "image/rect.hpp"
#include "mp/trace.hpp"

namespace slspvr::pvr {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);  ///< bit pattern, not text — byte-exact round trip
  void f64(double v);
  void str(const std::string& s);
  void bytes(std::span<const std::byte> data);

  [[nodiscard]] std::vector<std::byte> take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::byte>& data() const noexcept { return out_; }

 private:
  std::vector<std::byte> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;

  void need(std::size_t n) const;
};

/// Image as width, height, then width*height 16-byte pixels (4 float bit
/// patterns each) — the round trip is bit-exact by construction.
void write_image(ByteWriter& w, const img::Image& image);
[[nodiscard]] img::Image read_image(ByteReader& r);

void write_rect(ByteWriter& w, const img::Rect& rect);
[[nodiscard]] img::Rect read_rect(ByteReader& r);

void write_counters(ByteWriter& w, const core::Counters& counters);
[[nodiscard]] core::Counters read_counters(ByteReader& r);

void write_record(ByteWriter& w, const mp::MessageRecord& record);
[[nodiscard]] mp::MessageRecord read_record(ByteReader& r);

}  // namespace slspvr::pvr
