#include "pvr/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/fold.hpp"
#include "core/plan_compositor.hpp"

namespace slspvr::pvr {

void SnapshotStore::on_stage_complete(int rank, int stage, const img::Image& image,
                                      const img::Rect& region) {
  // Retain only the owned rectangle — the rest of the frame is stale.
  img::Image partial(image.width(), image.height());
  for (int y = region.y0; y < region.y1; ++y) {
    for (int x = region.x0; x < region.x1; ++x) partial.at(x, y) = image.at(x, y);
  }
  slots_[static_cast<std::size_t>(rank)].push_back({stage, std::move(partial), region});
}

int SnapshotStore::height(int rank) const {
  int best = 0;
  for (const Snap& s : slots_[static_cast<std::size_t>(rank)]) best = std::max(best, s.stage);
  return best;
}

const SnapshotStore::Snap* SnapshotStore::at_stage(int rank, int stage) const {
  for (const Snap& s : slots_[static_cast<std::size_t>(rank)]) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

Attempt run_attempt(const core::Compositor& method, const std::vector<img::Image>& subimages,
                    const core::SwapOrder& order, const core::CostModel& model,
                    const mp::RunOptions& opts, SnapshotStore* store,
                    core::EngineArena* arena) {
  const int ranks = static_cast<int>(subimages.size());
  Attempt attempt;
  MethodResult& result = attempt.result;
  result.method = std::string(method.name());
  result.per_rank.assign(static_cast<std::size_t>(ranks), core::Counters{});

  // Per-rank engine contexts, grown on this thread before the rank threads
  // spawn so context(r) below needs no synchronization.
  core::EngineArena local_arena;
  core::EngineArena& engines = arena != nullptr ? *arena : local_arena;
  engines.require(ranks);

  img::Image final_image;
  std::mutex final_mutex;

  const auto t0 = std::chrono::steady_clock::now();
  const mp::RunResult run = mp::Runtime::run_tolerant(ranks, [&](mp::Comm& comm) {
    const RetentionGuard retention(store);
    const int rank = comm.rank();
    img::Image local = subimages[static_cast<std::size_t>(rank)];  // methods mutate
    core::Counters& counters = result.per_rank[static_cast<std::size_t>(rank)];
    const core::Ownership owned =
        method.composite(comm, local, order, counters, engines.context(rank));
    img::Image gathered = core::gather_final(comm, local, owned, /*root=*/0);
    if (rank == 0) {
      const std::lock_guard lock(final_mutex);
      final_image = std::move(gathered);
    }
  }, opts);
  const auto t1 = std::chrono::steady_clock::now();

  attempt.retry_stats = run.trace().retry_stats();
  attempt.failures = run.failures();
  if (!attempt.failures.empty()) return attempt;

  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.times = model.critical_path(result.per_rank, run.trace());
  result.timeline = core::simulate_timeline(result.per_rank, run.trace(), model);
  result.m_max = core::max_received_message_bytes(run.trace());
  result.received_bytes_per_rank.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    result.received_bytes_per_rank[static_cast<std::size_t>(r)] =
        core::received_message_bytes(run.trace(), r);
  }
  result.final_image = std::move(final_image);
  return attempt;
}

namespace {

/// Poison-safe consensus on the resume epoch: a fresh SPMD round over the
/// survivors in which each contributes the height of its retained snapshots
/// and all agree on the minimum (gather at rank 0, broadcast back) — the
/// round runs on the full runtime, so a hung or dying participant aborts it
/// cleanly through the poison machinery instead of stalling recovery.
/// Returns nullopt when the round itself fails.
std::optional<int> agree_on_epoch(const std::vector<int>& heights) {
  const int n = static_cast<int>(heights.size());
  std::vector<int> agreed(static_cast<std::size_t>(n), -1);
  const mp::RunResult run = mp::Runtime::run_tolerant(n, [&](mp::Comm& comm) {
    const int mine = heights[static_cast<std::size_t>(comm.rank())];
    const auto all = comm.gather(0, std::as_bytes(std::span(&mine, 1)));
    int epoch = mine;
    if (comm.rank() == 0) {
      for (const auto& bytes : all) {
        int h = 0;
        if (bytes.size() == sizeof(int)) std::memcpy(&h, bytes.data(), sizeof(int));
        epoch = std::min(epoch, h);
      }
    }
    const auto decided = comm.broadcast(0, std::as_bytes(std::span(&epoch, 1)));
    int out = -1;
    if (decided.size() == sizeof(int)) std::memcpy(&out, decided.data(), sizeof(int));
    agreed[static_cast<std::size_t>(comm.rank())] = out;
  });
  if (!run.ok()) return std::nullopt;
  for (const int e : agreed) {
    if (e < 0 || e != agreed.front()) return std::nullopt;
  }
  return agreed.front();
}

/// The resume exchange: run the repaired k-ary plan over the survivors'
/// sparse full-frame inputs with the RLE-in-rect payload (the inputs are
/// mostly blank, so RLE keeps the healing traffic small).
class RepairCompositor final : public core::Compositor {
 public:
  RepairCompositor(const core::ExchangePlan& base, int epoch, std::vector<int> survivors,
                   std::string name)
      : plan_(core::repair_plan(base, epoch, survivors)), name_(std::move(name)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  using core::Compositor::composite;
  core::Ownership composite(mp::Comm& comm, img::Image& image, const core::SwapOrder& order,
                            core::Counters& counters,
                            core::EngineContext& engine) const override {
    return core::plan_composite(plan_, core::codec_for(core::CodecKind::kRleRect),
                                core::TrackerKind::kUnion, comm, image, order, counters,
                                engine);
  }

  [[nodiscard]] check::CommSchedule schedule(int /*ranks*/) const override {
    return core::derive_schedule(plan_, core::codec_for(core::CodecKind::kRleRect).traits(),
                                 name_);
  }

 private:
  core::ExchangePlan plan_;
  std::string name_;
};

/// Mid-frame repair is exact only when every contributor class (the ranks
/// whose subimages a partial composite already merged) occupies a contiguous
/// block of the depth order — then a retained partial composites as a unit
/// at its class's position. k-ary prefix classes are contiguous rank
/// intervals, so monotone orders always pass; exotic hand-built orders fall
/// back to degrade.
bool classes_contiguous_in(const std::vector<int>& depth_order,
                           const core::EpochState& state) {
  std::vector<int> pos(depth_order.size(), -1);
  for (std::size_t i = 0; i < depth_order.size(); ++i) {
    pos[static_cast<std::size_t>(depth_order[i])] = static_cast<int>(i);
  }
  for (const auto& members : state.contributors) {
    int lo = static_cast<int>(depth_order.size());
    int hi = -1;
    for (const int m : members) {
      const int p = pos[static_cast<std::size_t>(m)];
      if (p < 0) return false;
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    if (hi - lo + 1 != static_cast<int>(members.size())) return false;
  }
  return true;
}

void paste_region(img::Image& dst, const img::Image& src, const img::Rect& region) {
  for (int y = region.y0; y < region.y1; ++y) {
    for (int x = region.x0; x < region.x1; ++x) dst.at(x, y) = src.at(x, y);
  }
}

}  // namespace

FtMethodResult recover_frame(const core::Compositor& method,
                             const std::vector<img::Image>& subimages,
                             const core::SwapOrder& order, const core::CostModel& model,
                             const SnapshotStore& store, std::vector<bool> failed,
                             FaultReport report, core::EngineArena* arena) {
  const int ranks = static_cast<int>(subimages.size());
  FtMethodResult out;
  out.report = std::move(report);
  out.report.faulted = true;

  // `to_original[r]` maps an attempt-local rank to its original id.
  const auto absorb = [&](const std::vector<mp::RankFailure>& failures,
                          const std::vector<int>& to_original, int attempt_no) {
    for (const mp::RankFailure& f : failures) {
      const int original =
          to_original.empty() ? f.rank : to_original[static_cast<std::size_t>(f.rank)];
      out.report.events.push_back({original, f.stage, f.primary, attempt_no, f.what});
      if (f.primary) failed[static_cast<std::size_t>(original)] = true;
    }
  };

  // Depth order of the original ranks (identity when the order carries no
  // explicit traversal, e.g. hand-built test orders).
  std::vector<int> depth_order(order.front_to_back.begin(), order.front_to_back.end());
  if (static_cast<int>(depth_order.size()) != ranks) {
    depth_order.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) depth_order[static_cast<std::size_t>(r)] = r;
  }

  // ---- mid-frame plan repair ----------------------------------------------
  // Before throwing the frame away, try to resume it: survivors agree on
  // the failure epoch, keep their retained stage partials, re-contribute
  // the dead ranks' orphaned regions from their own (still live) rendered
  // subimages, and run a repaired k-ary exchange over the survivor set —
  // stages before the failure are never re-executed.
  std::optional<core::EpochState> resume_state;
  const auto try_resume = [&]() -> bool {
    const auto base_plan = method.resume_plan(ranks);
    if (!base_plan) return false;  // no per-rank rectangle state to resume
    std::vector<int> survivors;  // original ids, ascending
    for (int r = 0; r < ranks; ++r) {
      if (!failed[static_cast<std::size_t>(r)]) survivors.push_back(r);
    }
    if (survivors.empty() || static_cast<int>(survivors.size()) == ranks) return false;

    // Survivors agree on the resume epoch: the deepest stage every one of
    // them retained a partial for (poison-safe gather/broadcast round).
    std::vector<int> heights;
    heights.reserve(survivors.size());
    for (const int r : survivors) {
      heights.push_back(std::min(store.height(r), base_plan->stages()));
    }
    const std::optional<int> agreed = agree_on_epoch(heights);
    if (!agreed) return false;
    const int epoch = *agreed;

    core::EpochState state;
    try {
      state = core::plan_epoch_state(*base_plan, epoch, subimages.front().bounds());
    } catch (const std::invalid_argument&) {
      return false;  // scalar/band plan slipped through: degrade instead
    }
    if (!classes_contiguous_in(depth_order, state)) return false;

    // Virtual rank i of the repair exchange is the i-th *surviving* rank in
    // the original front-to-back order — k-ary suffix classes are contiguous
    // rank intervals, so with depth-ordered virtual ranks every merge in the
    // repaired exchange combines adjacent depth blocks (exact `over`).
    std::vector<int> survivors_depth;  // original ids, front to back
    survivors_depth.reserve(survivors.size());
    for (const int r : depth_order) {
      if (!failed[static_cast<std::size_t>(r)]) survivors_depth.push_back(r);
    }

    // Sparse full-frame resume inputs: the survivor's own partial over its
    // owned rectangle, plus its re-rendered contribution to every dead
    // rank's orphaned region (spatially disjoint by construction — prefix
    // parts of the same frame partition).
    std::vector<img::Image> resume_subs;
    resume_subs.reserve(survivors.size());
    for (const int s : survivors_depth) {
      img::Image input(subimages.front().width(), subimages.front().height());
      if (epoch == 0) {
        input = subimages[static_cast<std::size_t>(s)];
      } else {
        const SnapshotStore::Snap* snap = store.at_stage(s, epoch);
        if (snap == nullptr) return false;  // consensus said it exists; be safe
        paste_region(input, snap->image, state.region[static_cast<std::size_t>(s)]);
      }
      for (int d = 0; d < ranks; ++d) {
        if (!failed[static_cast<std::size_t>(d)]) continue;
        const auto& club = state.contributors[static_cast<std::size_t>(d)];
        if (!std::binary_search(club.begin(), club.end(), s)) continue;
        paste_region(input, subimages[static_cast<std::size_t>(s)],
                     state.region[static_cast<std::size_t>(d)]);
      }
      resume_subs.push_back(std::move(input));
    }

    // Virtual ranks are already front-to-back, so the repair exchange uses
    // the identity traversal (retained partials slot in as blocks — the
    // contiguity check above guarantees that is exact).
    core::SwapOrder resume_order;
    resume_order.front_to_back.resize(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      resume_order.front_to_back[i] = static_cast<int>(i);
    }

    const RepairCompositor repair(*base_plan, epoch, survivors,
                                  std::string(method.name()) + "-repair");
    ++out.report.retries;
    Attempt resumed =
        run_attempt(repair, resume_subs, resume_order, model, {}, nullptr, arena);
    out.report.retry_stats += resumed.retry_stats;
    if (!resumed.failures.empty()) {
      absorb(resumed.failures, survivors_depth, out.report.retries);
      return false;  // fall back to degrade with the extra failures folded in
    }
    out.report.resumed = true;
    out.report.resume_epoch = epoch;
    out.result = std::move(resumed.result);
    out.result.method = std::string(method.name()) + " [resumed]";
    resume_state = std::move(state);
    return true;
  };

  if (try_resume()) {
    for (int r = 0; r < ranks; ++r) {
      if (!failed[static_cast<std::size_t>(r)]) continue;
      out.report.failed_ranks.push_back(r);
      // Only the dead contributors' pixels inside the dead rank's owned
      // rectangle are actually gone; everything else was resumed.
      for (const int c : resume_state->contributors[static_cast<std::size_t>(r)]) {
        if (!failed[static_cast<std::size_t>(c)]) continue;
        out.report.pixels_lost +=
            img::count_non_blank(subimages[static_cast<std::size_t>(c)],
                                 resume_state->region[static_cast<std::size_t>(r)]);
      }
    }
    return out;
  }

  // Degraded mode: fold the failed PEs out and recomposite the survivors in
  // their original depth order. The fold extension accepts any survivor
  // count; front-to-back survivor index i is simply slab i of the retry.
  const core::FoldCompositor folded(method);
  for (;;) {
    ++out.report.retries;
    std::vector<int> survivors;  // original ids, front to back
    for (const int r : depth_order) {
      if (!failed[static_cast<std::size_t>(r)]) survivors.push_back(r);
    }
    if (survivors.empty()) {
      // Every PE lost: deliver a structured report and a blank frame.
      out.result.method = std::string(method.name());
      out.result.final_image =
          img::Image(subimages.front().width(), subimages.front().height());
      break;
    }

    std::vector<img::Image> degraded_subs;
    degraded_subs.reserve(survivors.size());
    for (const int r : survivors) degraded_subs.push_back(subimages[static_cast<std::size_t>(r)]);
    const float view_dir[3] = {1.0f, 0.0f, 0.0f};  // ascending = front to back
    const core::SwapOrder degraded_order =
        core::make_fold_order(static_cast<int>(survivors.size()), /*axis=*/0, view_dir);

    // Retries run without the injector: the fault already materialised, and
    // re-applying rank-keyed rules to the renumbered survivors would be
    // meaningless. A retry can still fail (it reuses the full stack), in
    // which case its primary ranks are folded out too.
    Attempt retry =
        run_attempt(folded, degraded_subs, degraded_order, model, {}, nullptr, arena);
    if (retry.failures.empty()) {
      out.report.degraded = true;
      out.result = std::move(retry.result);
      out.result.method = std::string(method.name()) + " [degraded]";
      break;
    }
    absorb(retry.failures, survivors, out.report.retries);
    const bool any_primary =
        std::any_of(retry.failures.begin(), retry.failures.end(),
                    [](const mp::RankFailure& f) { return f.primary; });
    if (!any_primary) {
      // Cannot make progress (should not happen: every failed retry has a
      // primary). Surface the original error rather than looping.
      std::rethrow_exception(retry.failures.front().error);
    }
  }

  for (int r = 0; r < ranks; ++r) {
    if (!failed[static_cast<std::size_t>(r)]) continue;
    out.report.failed_ranks.push_back(r);
    out.report.pixels_lost += img::count_non_blank(subimages[static_cast<std::size_t>(r)],
                                                   subimages[static_cast<std::size_t>(r)].bounds());
  }
  return out;
}

}  // namespace slspvr::pvr
