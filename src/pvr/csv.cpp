#include "pvr/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace slspvr::pvr {

namespace {

std::string make_row(const std::string& dataset, int image_size, int ranks,
                     const MethodResult& result, const mp::RetryStats& retry, int respawns,
                     std::uint64_t stale_rejects) {
  std::ostringstream row;
  row << csv_field(dataset) << ',' << image_size << ',' << ranks << ','
      << csv_field(result.method) << ','
      << result.times.comp_ms << ',' << result.times.comm_ms << ','
      << result.times.total_ms() << ',' << result.timeline.makespan_ms << ','
      << result.timeline.max_wait_ms << ',' << result.m_max << ',' << result.wall_ms << ','
      << retry.naks << ',' << retry.retransmits << ',' << retry.healed_bytes << ','
      << respawns << ',' << stale_rejects;
  return row.str();
}

}  // namespace

std::string csv_field(const std::string& value) {
  // RFC 4180: quote only when the field contains a comma, a double quote, or
  // a line break; embedded quotes double. Everything else passes through
  // verbatim so existing plain rows stay byte-identical.
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted.push_back('"');
  for (const char c : value) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::add(const std::string& dataset, int image_size, int ranks,
                    const MethodResult& result) {
  rows_.push_back(make_row(dataset, image_size, ranks, result, mp::RetryStats{}, 0, 0));
}

void CsvWriter::add(const std::string& dataset, int image_size, int ranks,
                    const FtMethodResult& result) {
  rows_.push_back(make_row(dataset, image_size, ranks, result.result,
                           result.report.retry_stats, result.report.respawns,
                           result.report.stale_rejects));
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvWriter: cannot open " + path);
  out << "dataset,image,ranks,method,comp_ms,comm_ms,total_ms,timeline_ms,"
         "wait_ms,m_max_bytes,wall_ms,naks,retransmits,healed_bytes,respawns,"
         "stale_rejects\n";
  for (const auto& row : rows_) out << row << "\n";
  if (!out) throw std::runtime_error("CsvWriter: write failed " + path);
}

}  // namespace slspvr::pvr
