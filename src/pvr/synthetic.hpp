// Synthetic subimage generation: controllable-sparsity images used by the
// property tests and the ablation benches (density sweeps, skewed loads)
// without paying for a volume render.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hpp"

namespace slspvr::pvr {

/// A subimage of random soft blobs covering roughly `density` of the area,
/// with per-pixel float noise (so value-RLE sees realistic volume pixels).
/// Deterministic in `seed`.
[[nodiscard]] img::Image random_subimage(int width, int height, double density,
                                         std::uint32_t seed);

/// One subimage per rank, seeds derived from `seed`.
[[nodiscard]] std::vector<img::Image> make_subimages(int ranks, int width, int height,
                                                     double density,
                                                     std::uint32_t seed = 1234);

/// A maximally skewed workload: all non-blank pixels concentrated in one
/// corner block (fraction `coverage` of the area) on every rank — the
/// uneven-distribution case Molnar et al. flag for sort-last-sparse
/// merging, used by the interleave (BSLC load-balancing) ablation.
[[nodiscard]] std::vector<img::Image> make_skewed_subimages(int ranks, int width, int height,
                                                            double coverage,
                                                            std::uint32_t seed = 99);

}  // namespace slspvr::pvr
