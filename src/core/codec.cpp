#include "core/codec.hpp"

#include <stdexcept>
#include <string>

#include "core/wire.hpp"

namespace slspvr::core {

void PayloadCodec::encode_rect(const img::Image&, const img::Rect&, const img::Rect&,
                               img::PackBuffer&, Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not encode rectangles");
}

img::Rect PayloadCodec::decode_rect(img::Image&, const img::Rect&, img::UnpackBuffer&, bool,
                                    Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not decode rectangles");
}

void PayloadCodec::encode_range(const img::Image&, const img::InterleavedRange&,
                                img::PackBuffer&, Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not encode progressions");
}

void PayloadCodec::decode_range(img::Image&, const img::InterleavedRange&, img::UnpackBuffer&,
                                bool, Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not decode progressions");
}

namespace {

/// Raw region pixels, no header: 16 B/pixel over the whole part.
class FullPixelCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "full-pixel"; }
  [[nodiscard]] WireTraits traits() const override {
    return WireTraits{check::PayloadClass::kFullRegion, 0, 16, 0, false};
  }
  void encode_rect(const img::Image& image, const img::Rect& part, const img::Rect&,
                   img::PackBuffer& buf, Counters& counters) const override {
    buf.reserve(buf.size() + static_cast<std::size_t>(part.area()) * sizeof(img::Pixel));
    wire::pack_rect_pixels(image, part, buf);
    counters.pixels_sent += part.area();
  }
  img::Rect decode_rect(img::Image& image, const img::Rect& part, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    wire::unpack_composite_rect(image, part, in, incoming_in_front, counters);
    return part;
  }
};

/// WireRect header + raw pixels of the clipped rectangle (BSBR).
class BoundingRectCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "bounding-rect"; }
  [[nodiscard]] WireTraits traits() const override {
    return WireTraits{check::PayloadClass::kBoundingRect, 8, 16, 0, false};
  }
  [[nodiscard]] bool tracks_rect() const override { return true; }
  void encode_rect(const img::Image& image, const img::Rect&, const img::Rect& clip,
                   img::PackBuffer& buf, Counters& counters) const override {
    wire::pack_raw_rect(image, clip, buf, counters);
  }
  img::Rect decode_rect(img::Image& image, const img::Rect&, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    return wire::unpack_composite_raw_rect(image, in, image.bounds(), incoming_in_front,
                                           counters);
  }
};

/// WireRect header + row-major RLE of the clipped rectangle (BSBRC).
class RleRectCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "rle-rect"; }
  [[nodiscard]] WireTraits traits() const override {
    // WireRect (8 B) + code-count headroom (4 B) + RLE worst case 18 B/pixel.
    return WireTraits{check::PayloadClass::kNonBlank, 12, 18, 0, false};
  }
  [[nodiscard]] bool tracks_rect() const override { return true; }
  void encode_rect(const img::Image& image, const img::Rect&, const img::Rect& clip,
                   img::PackBuffer& buf, Counters& counters) const override {
    wire::pack_rle_rect(image, clip, buf, counters);
  }
  img::Rect decode_rect(img::Image& image, const img::Rect&, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    return wire::unpack_composite_rle_rect(image, in, image.bounds(), incoming_in_front,
                                           counters);
  }
};

/// WireRect header + scanline spans of the clipped rectangle (BSBRS).
class SpanRectCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "span-rect"; }
  [[nodiscard]] WireTraits traits() const override {
    // WireRect + 4 B span-count headroom, 20 B per single-pixel span, 2 B
    // span-count per rectangle row (paid even when the row is blank).
    return WireTraits{check::PayloadClass::kNonBlank, 12, 20, 2, false};
  }
  [[nodiscard]] bool tracks_rect() const override { return true; }
  void encode_rect(const img::Image& image, const img::Rect&, const img::Rect& clip,
                   img::PackBuffer& buf, Counters& counters) const override {
    wire::pack_span_rect(image, clip, buf, counters);
  }
  img::Rect decode_rect(img::Image& image, const img::Rect&, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    return wire::unpack_composite_span_rect(image, in, image.bounds(), incoming_in_front,
                                            counters);
  }
};

/// RLE over an interleaved pixel progression, no header (BSLC).
class InterleavedRleCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "interleaved-rle"; }
  [[nodiscard]] WireTraits traits() const override {
    // Worst case one 2 B code per 16 B pixel, behind a 4 B count headroom.
    return WireTraits{check::PayloadClass::kNonBlank, 4, 18, 0, true};
  }
  [[nodiscard]] bool scalar() const override { return true; }
  void encode_range(const img::Image& image, const img::InterleavedRange& part,
                    img::PackBuffer& buf, Counters& counters) const override {
    const img::Rle rle = wire::encode_strided(image, part, counters);
    counters.pixels_sent += rle.non_blank_count();
    buf.reserve(buf.size() + static_cast<std::size_t>(rle.wire_bytes()));
    wire::pack_rle(rle, buf);
  }
  void decode_range(img::Image& image, const img::InterleavedRange& part,
                    img::UnpackBuffer& in, bool incoming_in_front,
                    Counters& counters) const override {
    const img::Rle incoming = wire::parse_rle(in, part.count);
    wire::composite_rle_strided(image, part, incoming, incoming_in_front, counters);
  }
};

}  // namespace

const PayloadCodec& codec_for(CodecKind kind) {
  static const FullPixelCodec full;
  static const BoundingRectCodec brect;
  static const RleRectCodec rle;
  static const SpanRectCodec span;
  static const InterleavedRleCodec strided;
  switch (kind) {
    case CodecKind::kFullPixel: return full;
    case CodecKind::kBoundingRect: return brect;
    case CodecKind::kRleRect: return rle;
    case CodecKind::kSpanRect: return span;
    case CodecKind::kInterleavedRle: return strided;
  }
  throw std::invalid_argument("codec_for: unknown codec kind");
}

std::string_view codec_name(CodecKind kind) { return codec_for(kind).name(); }

}  // namespace slspvr::core
