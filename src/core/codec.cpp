#include "core/codec.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "core/worker_pool.hpp"
#include "image/kernels.hpp"

namespace slspvr::core {

void PayloadCodec::encode_rect(const img::Image&, const img::Rect&, const img::Rect&,
                               img::PackBuffer&, Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not encode rectangles");
}

img::Rect PayloadCodec::decode_rect(img::Image&, const img::Rect&, img::UnpackBuffer&, bool,
                                    Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not decode rectangles");
}

void PayloadCodec::encode_range(const img::Image&, const img::InterleavedRange&,
                                img::PackBuffer&, Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not encode progressions");
}

void PayloadCodec::decode_range(img::Image&, const img::InterleavedRange&, img::UnpackBuffer&,
                                bool, Counters&) const {
  throw std::logic_error(std::string(name()) + ": codec does not decode progressions");
}

img::Rect PayloadCodec::decode_rect_into(DecodeSink& sink, const img::Rect& part,
                                         img::UnpackBuffer& in) const {
  return decode_rect(sink.image, part, in, sink.incoming_in_front, sink.counters);
}

void PayloadCodec::decode_range_into(DecodeSink& sink, const img::InterleavedRange& part,
                                     img::UnpackBuffer& in) const {
  decode_range(sink.image, part, in, sink.incoming_in_front, sink.counters);
}

namespace {

// ---- streaming-decode plumbing -------------------------------------------

EngineScratch& sink_scratch(const DecodeSink& sink, int worker) {
  return sink.engine.scratch(worker);
}

[[nodiscard]] int sink_workers(const DecodeSink& sink) { return sink.engine.workers(); }

[[nodiscard]] bool sink_fused(const DecodeSink& sink) {
  return sink.engine.config().fused_decode;
}

/// Fan a banded task across the sink's engine pool (a 1-wide pool runs the
/// task inline on the caller).
void run_banded(const DecodeSink& sink, const std::function<void(int)>& fn) {
  sink.engine.pool().run(fn);
}

/// Reinterpret a borrowed wire section as `T[count]`, bouncing through
/// `bounce` when the in-buffer address is misaligned for T (possible only if
/// the transport hands us an oddly based buffer — reinterpreting anyway
/// would be UB, so the copy is the safe slow path).
template <typename T>
const T* aligned_view(std::span<const std::byte> bytes, std::size_t count,
                      std::vector<T>& bounce) {
  if ((reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(T)) == 0) {
    return reinterpret_cast<const T*>(bytes.data());
  }
  bounce.resize(count);
  std::memcpy(bounce.data(), bytes.data(), count * sizeof(T));
  return bounce.data();
}

/// Band-parallel blend of a raw row-major pixel payload over `rect`,
/// straight out of the receive buffer (FullPixel / BoundingRect bodies).
void composite_raw_rect_view(DecodeSink& sink, const img::Rect& rect, img::UnpackBuffer& in) {
  const std::span<const std::byte> bytes =
      in.get_bytes(static_cast<std::size_t>(rect.area()) * sizeof(img::Pixel));
  const img::Pixel* pixels =
      aligned_view(bytes, static_cast<std::size_t>(rect.area()), sink_scratch(sink, 0).bounce);
  const int nworkers = sink_workers(sink);
  img::Image& image = sink.image;
  const bool in_front = sink.incoming_in_front;
  run_banded(sink, [&](int w) {
    const ChunkBounds band = chunk_bounds(rect.height(), nworkers, w);
    for (std::int64_t y = band.first; y < band.last; ++y) {
      img::kern::composite_span(&image.at(rect.x0, rect.y0 + static_cast<int>(y)),
                                pixels + y * rect.width(), rect.width(), in_front);
    }
  });
  sink.counters.over_ops += rect.area();
  sink.counters.pixels_received += rect.area();
}

/// Blend one band of an interleaved-RLE message: the strided equivalent of
/// kern::composite_rle_span, reproducing composite_rle_strided's per-run
/// gather → composite_span → scatter arithmetic over the band's elements
/// (runs split at band boundaries change only the chunking, not any pixel's
/// arithmetic). Returns the number of pixels composited.
std::int64_t composite_rle_strided_band(img::Image& image, const img::InterleavedRange& range,
                                        const wire::RleView& view, img::kern::RleCursor cur,
                                        std::int64_t pos, std::int64_t n, bool in_front,
                                        std::vector<img::Pixel>& staging) {
  std::int64_t composited = 0;
  while (n > 0) {
    if (cur.run_left == 0) {
      if (cur.code >= view.ncodes) break;
      cur.blank = !cur.blank;
      cur.run_left = view.codes[cur.code++];
      continue;
    }
    const std::int64_t take = std::min(cur.run_left, n);
    if (!cur.blank) {
      if (static_cast<std::int64_t>(staging.size()) < take) {
        staging.resize(static_cast<std::size_t>(take));
      }
      const std::int64_t offset = range.index(pos);
      img::kern::gather_strided(image.pixels().data(), offset, range.stride, take,
                                staging.data());
      img::kern::composite_span(staging.data(), view.pixels + cur.pixel, take, in_front);
      img::kern::scatter_strided(staging.data(), take, image.pixels().data(), offset,
                                 range.stride);
      cur.pixel += take;
      composited += take;
    }
    cur.run_left -= take;
    pos += take;
    n -= take;
  }
  return composited;
}

/// Raw region pixels, no header: 16 B/pixel over the whole part.
class FullPixelCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "full-pixel"; }
  [[nodiscard]] WireTraits traits() const override {
    return WireTraits{check::PayloadClass::kFullRegion, 0, 16, 0, false};
  }
  void encode_rect(const img::Image& image, const img::Rect& part, const img::Rect&,
                   img::PackBuffer& buf, Counters& counters) const override {
    buf.reserve(buf.size() + static_cast<std::size_t>(part.area()) * sizeof(img::Pixel));
    wire::pack_rect_pixels(image, part, buf);
    counters.pixels_sent += part.area();
  }
  img::Rect decode_rect(img::Image& image, const img::Rect& part, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    wire::unpack_composite_rect(image, part, in, incoming_in_front, counters);
    return part;
  }
  img::Rect decode_rect_into(DecodeSink& sink, const img::Rect& part,
                             img::UnpackBuffer& in) const override {
    if (!sink_fused(sink)) return PayloadCodec::decode_rect_into(sink, part, in);
    composite_raw_rect_view(sink, part, in);
    return part;
  }
};

/// WireRect header + raw pixels of the clipped rectangle (BSBR).
class BoundingRectCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "bounding-rect"; }
  [[nodiscard]] WireTraits traits() const override {
    return WireTraits{check::PayloadClass::kBoundingRect, 8, 16, 0, false};
  }
  [[nodiscard]] bool tracks_rect() const override { return true; }
  void encode_rect(const img::Image& image, const img::Rect&, const img::Rect& clip,
                   img::PackBuffer& buf, Counters& counters) const override {
    wire::pack_raw_rect(image, clip, buf, counters);
  }
  img::Rect decode_rect(img::Image& image, const img::Rect&, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    return wire::unpack_composite_raw_rect(image, in, image.bounds(), incoming_in_front,
                                           counters);
  }
  img::Rect decode_rect_into(DecodeSink& sink, const img::Rect& part,
                             img::UnpackBuffer& in) const override {
    if (!sink_fused(sink)) return PayloadCodec::decode_rect_into(sink, part, in);
    const img::Rect rect = wire::parse_rect(in, sink.image.bounds());
    if (!rect.empty()) composite_raw_rect_view(sink, rect, in);
    return rect;
  }
};

/// WireRect header + row-major RLE of the clipped rectangle (BSBRC).
class RleRectCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "rle-rect"; }
  [[nodiscard]] WireTraits traits() const override {
    // WireRect (8 B) + code-count headroom (4 B) + RLE worst case 18 B/pixel.
    return WireTraits{check::PayloadClass::kNonBlank, 12, 18, 0, false};
  }
  [[nodiscard]] bool tracks_rect() const override { return true; }
  void encode_rect(const img::Image& image, const img::Rect&, const img::Rect& clip,
                   img::PackBuffer& buf, Counters& counters) const override {
    wire::pack_rle_rect(image, clip, buf, counters);
  }
  img::Rect decode_rect(img::Image& image, const img::Rect&, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    return wire::unpack_composite_rle_rect(image, in, image.bounds(), incoming_in_front,
                                           counters);
  }
  img::Rect decode_rect_into(DecodeSink& sink, const img::Rect& part,
                             img::UnpackBuffer& in) const override {
    if (!sink_fused(sink)) return PayloadCodec::decode_rect_into(sink, part, in);
    const img::Rect rect = wire::parse_rect(in, sink.image.bounds());
    if (rect.empty()) return rect;
    EngineScratch& s0 = sink_scratch(sink, 0);
    const wire::RleView view = wire::parse_rle_view(in, rect.area(), s0.bounce, s0.code_bounce);
    const int nworkers = sink_workers(sink);
    // Serial prescan: band w's cursor is the walk state at its first
    // sequence element (runs — including kMaxRun escape chains — straddle
    // band boundaries freely; rle_skip resumes mid-run).
    std::vector<img::kern::RleCursor> cursors(static_cast<std::size_t>(nworkers));
    img::kern::RleCursor cur;
    std::int64_t at = 0;
    for (int w = 0; w < nworkers; ++w) {
      const ChunkBounds band = chunk_bounds(rect.area(), nworkers, w);
      img::kern::rle_skip(view.codes, view.ncodes, cur, band.first - at);
      at = band.first;
      cursors[static_cast<std::size_t>(w)] = cur;
    }
    std::vector<std::int64_t> composited(static_cast<std::size_t>(nworkers), 0);
    img::Image& image = sink.image;
    const bool in_front = sink.incoming_in_front;
    run_banded(sink, [&](int w) {
      const ChunkBounds band = chunk_bounds(rect.area(), nworkers, w);
      if (band.count() == 0) return;
      img::kern::RleCursor c = cursors[static_cast<std::size_t>(w)];
      composited[static_cast<std::size_t>(w)] = img::kern::composite_rle_span(
          &image.at(rect.x0, rect.y0), band.first, rect.width(), image.width(), view.codes,
          view.ncodes, view.pixels, c, band.count(), in_front);
    });
    std::int64_t total = 0;
    for (const std::int64_t c : composited) total += c;
    sink.counters.over_ops += total;
    sink.counters.pixels_received += total;
    return rect;
  }
};

/// WireRect header + scanline spans of the clipped rectangle (BSBRS).
class SpanRectCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "span-rect"; }
  [[nodiscard]] WireTraits traits() const override {
    // WireRect + 4 B span-count headroom, 20 B per single-pixel span, 2 B
    // span-count per rectangle row (paid even when the row is blank).
    return WireTraits{check::PayloadClass::kNonBlank, 12, 20, 2, false};
  }
  [[nodiscard]] bool tracks_rect() const override { return true; }
  void encode_rect(const img::Image& image, const img::Rect&, const img::Rect& clip,
                   img::PackBuffer& buf, Counters& counters) const override {
    wire::pack_span_rect(image, clip, buf, counters);
  }
  img::Rect decode_rect(img::Image& image, const img::Rect&, img::UnpackBuffer& in,
                        bool incoming_in_front, Counters& counters) const override {
    return wire::unpack_composite_span_rect(image, in, image.bounds(), incoming_in_front,
                                            counters);
  }
  img::Rect decode_rect_into(DecodeSink& sink, const img::Rect& part,
                             img::UnpackBuffer& in) const override {
    if (!sink_fused(sink)) return PayloadCodec::decode_rect_into(sink, part, in);
    const img::Rect rect = wire::parse_rect(in, sink.image.bounds());
    if (rect.empty()) return rect;
    const wire::SpanView view = wire::parse_spans_view(in, rect, sink_scratch(sink, 0).bounce);
    const int nworkers = sink_workers(sink);
    // Serial prescan: prefix sums of span and payload counts up to each row
    // band, so every worker starts at its band's first span and pixel.
    struct BandStart {
      std::size_t span = 0;
      std::int64_t pixel = 0;
    };
    std::vector<BandStart> starts(static_cast<std::size_t>(nworkers));
    {
      std::size_t span_idx = 0;
      std::int64_t pixel_idx = 0;
      std::int64_t row = 0;
      for (int w = 0; w < nworkers; ++w) {
        const ChunkBounds band = chunk_bounds(rect.height(), nworkers, w);
        starts[static_cast<std::size_t>(w)] = BandStart{span_idx, pixel_idx};
        for (; row < band.last; ++row) {
          const std::uint16_t nspans = view.row_counts[row];
          for (std::uint16_t s = 0; s < nspans; ++s) {
            pixel_idx += view.spans[span_idx + s].len;
          }
          span_idx += nspans;
        }
      }
    }
    std::vector<std::int64_t> composited(static_cast<std::size_t>(nworkers), 0);
    img::Image& image = sink.image;
    const bool in_front = sink.incoming_in_front;
    run_banded(sink, [&](int w) {
      const ChunkBounds band = chunk_bounds(rect.height(), nworkers, w);
      if (band.count() == 0) return;
      const BandStart& start = starts[static_cast<std::size_t>(w)];
      composited[static_cast<std::size_t>(w)] = img::kern::composite_span_rows(
          &image.at(rect.x0, rect.y0 + static_cast<int>(band.first)), image.width(),
          view.row_counts + band.first, band.count(), view.spans + start.span,
          view.pixels + start.pixel, in_front);
    });
    std::int64_t total = 0;
    for (const std::int64_t c : composited) total += c;
    sink.counters.over_ops += total;
    sink.counters.pixels_received += total;
    return rect;
  }
};

/// RLE over an interleaved pixel progression, no header (BSLC).
class InterleavedRleCodec final : public PayloadCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return "interleaved-rle"; }
  [[nodiscard]] WireTraits traits() const override {
    // Worst case one 2 B code per 16 B pixel, behind a 4 B count headroom.
    return WireTraits{check::PayloadClass::kNonBlank, 4, 18, 0, true};
  }
  [[nodiscard]] bool scalar() const override { return true; }
  void encode_range(const img::Image& image, const img::InterleavedRange& part,
                    img::PackBuffer& buf, Counters& counters) const override {
    const img::Rle rle = wire::encode_strided(image, part, counters);
    counters.pixels_sent += rle.non_blank_count();
    buf.reserve(buf.size() + static_cast<std::size_t>(rle.wire_bytes()));
    wire::pack_rle(rle, buf);
  }
  void decode_range(img::Image& image, const img::InterleavedRange& part,
                    img::UnpackBuffer& in, bool incoming_in_front,
                    Counters& counters) const override {
    const img::Rle incoming = wire::parse_rle(in, part.count);
    wire::composite_rle_strided(image, part, incoming, incoming_in_front, counters);
  }
  void decode_range_into(DecodeSink& sink, const img::InterleavedRange& part,
                         img::UnpackBuffer& in) const override {
    if (!sink_fused(sink)) return PayloadCodec::decode_range_into(sink, part, in);
    EngineScratch& s0 = sink_scratch(sink, 0);
    const wire::RleView view = wire::parse_rle_view(in, part.count, s0.bounce, s0.code_bounce);
    const int nworkers = sink_workers(sink);
    std::vector<img::kern::RleCursor> cursors(static_cast<std::size_t>(nworkers));
    img::kern::RleCursor cur;
    std::int64_t at = 0;
    for (int w = 0; w < nworkers; ++w) {
      const ChunkBounds band = chunk_bounds(part.count, nworkers, w);
      img::kern::rle_skip(view.codes, view.ncodes, cur, band.first - at);
      at = band.first;
      cursors[static_cast<std::size_t>(w)] = cur;
    }
    std::vector<std::int64_t> composited(static_cast<std::size_t>(nworkers), 0);
    img::Image& image = sink.image;
    const bool in_front = sink.incoming_in_front;
    run_banded(sink, [&](int w) {
      const ChunkBounds band = chunk_bounds(part.count, nworkers, w);
      if (band.count() == 0) return;
      composited[static_cast<std::size_t>(w)] = composite_rle_strided_band(
          image, part, view, cursors[static_cast<std::size_t>(w)], band.first, band.count(),
          in_front, sink_scratch(sink, w).staging);
    });
    std::int64_t total = 0;
    for (const std::int64_t c : composited) total += c;
    sink.counters.over_ops += total;
    sink.counters.pixels_received += total;
  }
};

}  // namespace

const PayloadCodec& codec_for(CodecKind kind) {
  static const FullPixelCodec full;
  static const BoundingRectCodec brect;
  static const RleRectCodec rle;
  static const SpanRectCodec span;
  static const InterleavedRleCodec strided;
  switch (kind) {
    case CodecKind::kFullPixel: return full;
    case CodecKind::kBoundingRect: return brect;
    case CodecKind::kRleRect: return rle;
    case CodecKind::kSpanRect: return span;
    case CodecKind::kInterleavedRle: return strided;
  }
  throw std::invalid_argument("codec_for: unknown codec kind");
}

std::string_view codec_name(CodecKind kind) { return codec_for(kind).name(); }

}  // namespace slspvr::core
