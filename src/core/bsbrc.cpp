#include "core/bsbrc.hpp"

#include "core/wire.hpp"

namespace slspvr::core {

Ownership BsbrcCompositor::composite(mp::Comm& comm, img::Image& image,
                                     const SwapOrder& order, Counters& counters) const {
  img::Rect region = image.bounds();
  // Algorithm lines 2-4: find the local bounding rectangle (T_bound scan).
  img::Rect local_rect = img::bounding_rect_of(image, region, &counters.rect_scanned);

  for (int k = 1; k <= order.levels; ++k) {  // line 5
    comm.set_stage(k);
    const int bit = k - 1;
    const int partner = comm.rank() ^ (1 << bit);
    const bool keep_low = ((comm.rank() >> bit) & 1) == 0;

    // Line 6: centerline split into new-local and sending halves.
    const auto halves = img::split_centerline(region);
    const img::Rect keep = keep_low ? halves[0] : halves[1];
    const img::Rect give = keep_low ? halves[1] : halves[0];
    const img::Rect send_rect = img::intersect(local_rect, give);

    // Lines 7-12: RLE the sending rectangle, pack header + codes + pixels.
    img::PackBuffer buf;
    buf.put(img::to_wire(send_rect));
    if (!send_rect.empty()) {
      const img::Rle rle = wire::encode_rect(image, send_rect, counters);
      counters.pixels_sent += rle.non_blank_count();
      wire::pack_rle(rle, buf);
    }

    // Lines 13-14: exchange with the paired PE.
    const auto received = comm.sendrecv(partner, k, buf.bytes());

    // Lines 15-20: unpack, composite non-blank pixels per the codes.
    img::UnpackBuffer in(received);
    const img::Rect recv_rect = wire::parse_rect(in, image.bounds());
    if (!recv_rect.empty()) {
      const img::Rle incoming = wire::parse_rle(in, recv_rect.area());
      wire::composite_rle_rect(image, recv_rect, incoming,
                               order.incoming_in_front(comm.rank(), bit), counters);
    }

    // Line 21: new local rectangle = kept portion U received rectangle
    // (O(1)); the tight-rescan ablation variant rescans the kept region for
    // an exact rectangle instead.
    if (tight_rescan_) {
      local_rect = img::bounding_rect_of(image, keep, &counters.rect_scanned);
    } else {
      local_rect = img::bounding_union(img::intersect(local_rect, keep), recv_rect);
    }
    region = keep;
    counters.mark_stage();
  }
  comm.set_stage(0);
  return Ownership::full_rect(region);
}


check::CommSchedule BsbrcCompositor::schedule(int ranks) const {
  // WireRect (8 B) + code-count header (4 B) + RLE worst case 18 B/pixel.
  return check::binary_swap_family_schedule(name(), ranks, check::PayloadClass::kNonBlank,
                                            18, 12, false);
}

}  // namespace slspvr::core
