#include "core/bsbrc.hpp"

#include "core/engine.hpp"

namespace slspvr::core {

Ownership BsbrcCompositor::composite(mp::Comm& comm, img::Image& image,
                                     const SwapOrder& order, Counters& counters,
                                    EngineContext& engine) const {
  // Paper method: O(1) rectangle update (algorithm line 21); the tight
  // ablation rescans the kept region each stage for an exact rectangle.
  return plan_composite(binary_swap_plan(comm.size()), codec_for(CodecKind::kRleRect),
                        tight_rescan_ ? TrackerKind::kRescan : TrackerKind::kUnion, comm,
                        image, order, counters, engine);
}


check::CommSchedule BsbrcCompositor::schedule(int ranks) const {
  return derive_schedule(binary_swap_plan(ranks), codec_for(CodecKind::kRleRect).traits(),
                         name());
}

}  // namespace slspvr::core
