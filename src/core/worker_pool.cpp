#include "core/worker_pool.hpp"

#include <stdexcept>

#include "image/kernels.hpp"

namespace slspvr::core {

ChunkBounds chunk_bounds(std::int64_t n, int parts, int j) noexcept {
  const std::int64_t p = parts;
  return ChunkBounds{(n * j + p - 1) / p, (n * (j + 1) + p - 1) / p};
}

WorkerPool::WorkerPool(int workers) : scratch_(static_cast<std::size_t>(workers < 1 ? 1 : workers)) {
  threads_.reserve(scratch_.size() - 1);
  for (int i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    pending_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is worker 0; its exception (if any) wins over the helpers'.
  std::exception_ptr own_error;
  try {
    fn(0);
  } catch (...) {
    own_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  task_ = nullptr;
  std::exception_ptr error = own_error != nullptr ? own_error : first_error_;
  first_error_ = nullptr;
  if (error != nullptr) {
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void WorkerPool::worker_loop(int index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::function<void(int)>* task = task_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*task)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && first_error_ == nullptr) first_error_ = error;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

img::Image& EngineContext::scratch_frame(int width, int height) {
  img::Image& frame = pool_.scratch(0).frame;
  if (frame.width() != width || frame.height() != height) {
    frame = img::Image(width, height);  // freshly zeroed by construction
  } else {
    img::kern::fill_zero(frame.pixels().data(), frame.pixel_count());
  }
  return frame;
}

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

/// Release a vector outright when its capacity exceeds `budget` elements —
/// the "reset" arm of the shrink-or-reset policy (it regrows on demand).
template <typename T>
void reset_if_over(std::vector<T>& v, std::int64_t budget) {
  if (static_cast<std::int64_t>(v.capacity()) > budget) {
    v = std::vector<T>();
  }
}

}  // namespace

std::size_t EngineContext::scratch_bytes() const noexcept {
  std::size_t total = 0;
  // scratch() is non-const only because callers mutate the buffers; the
  // accounting walk is read-only.
  auto& pool = const_cast<WorkerPool&>(pool_);
  for (int w = 0; w < pool_.workers(); ++w) {
    const EngineScratch& s = pool.scratch(w);
    total += s.pack.capacity();
    total += static_cast<std::size_t>(s.frame.pixel_count()) * sizeof(img::Pixel);
    total += vec_bytes(s.staging) + vec_bytes(s.staging2) + vec_bytes(s.bounce);
    total += vec_bytes(s.code_bounce);
    total += vec_bytes(s.soa_a) + vec_bytes(s.soa_b);
  }
  return total;
}

void EngineContext::trim(std::int64_t max_pixels) {
  if (max_pixels < 0) throw std::invalid_argument("EngineContext::trim: negative budget");
  // The budgets are steady-state caps, not worst-case bounds: capacity is
  // never a correctness matter (every buffer regrows on demand), so trim
  // sizes the pool for the *typical* frame at `max_pixels` and lets a
  // pathological frame (worst-case-dense RLE, a whole-frame message) pay one
  // regrow. Worst-case budgets would defeat the audit — a frame 4x larger
  // than the budget still fits inside the smaller frame's worst case, and
  // the pool would keep reporting the big frame's buffers forever.
  //
  //  * pack: raw pixels are 16 B; RLE output above ~8 B/px of the whole
  //    frame means the arena was sized by a larger (or pathological) frame.
  //  * per-message buffers (staging, bounce, codes, SoA ping-pong): one
  //    exchange carries at most a region, and regions are at most half the
  //    frame whenever there are >= 2 ranks.
  const std::int64_t pack_budget = max_pixels * 8 + 64;
  const std::int64_t message_budget = max_pixels / 2 + 64;
  for (int w = 0; w < pool_.workers(); ++w) {
    EngineScratch& s = pool_.scratch(w);
    if (static_cast<std::int64_t>(s.pack.capacity()) > pack_budget) s.pack.reset();
    if (s.frame.pixel_count() > max_pixels) s.frame = img::Image();
    reset_if_over(s.staging, message_budget);
    reset_if_over(s.staging2, message_budget);
    reset_if_over(s.bounce, message_budget);
    reset_if_over(s.code_bounce, message_budget);
    reset_if_over(s.soa_a, message_budget);
    reset_if_over(s.soa_b, message_budget);
  }
}

EngineContext::UseGuard::UseGuard(EngineContext& ctx) : ctx_(ctx) {
  if (ctx_.in_use_.exchange(true, std::memory_order_acquire)) {
    throw std::logic_error(
        "EngineContext: already in use — two frames may not share one engine "
        "context concurrently (give each frame its own, e.g. via EngineArena)");
  }
}

EngineContext::UseGuard::~UseGuard() { ctx_.in_use_.store(false, std::memory_order_release); }

}  // namespace slspvr::core
