#include "core/worker_pool.hpp"

#include <atomic>

namespace slspvr::core {

namespace {

std::atomic<int> g_workers_per_rank{1};
std::atomic<bool> g_fused_decode{true};

}  // namespace

int workers_per_rank() noexcept {
  return g_workers_per_rank.load(std::memory_order_relaxed);
}

void set_workers_per_rank(int workers) noexcept {
  g_workers_per_rank.store(workers < 1 ? 1 : workers, std::memory_order_relaxed);
}

bool fused_decode() noexcept { return g_fused_decode.load(std::memory_order_relaxed); }

void set_fused_decode(bool on) noexcept {
  g_fused_decode.store(on, std::memory_order_relaxed);
}

ChunkBounds chunk_bounds(std::int64_t n, int parts, int j) noexcept {
  const std::int64_t p = parts;
  return ChunkBounds{(n * j + p - 1) / p, (n * (j + 1) + p - 1) / p};
}

WorkerPool::WorkerPool(int workers) : scratch_(static_cast<std::size_t>(workers < 1 ? 1 : workers)) {
  threads_.reserve(scratch_.size() - 1);
  for (int i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    pending_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is worker 0; its exception (if any) wins over the helpers'.
  std::exception_ptr own_error;
  try {
    fn(0);
  } catch (...) {
    own_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  task_ = nullptr;
  std::exception_ptr error = own_error != nullptr ? own_error : first_error_;
  first_error_ = nullptr;
  if (error != nullptr) {
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void WorkerPool::worker_loop(int index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::function<void(int)>* task = task_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*task)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && first_error_ == nullptr) first_error_ = error;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

WorkerPool& WorkerPool::for_this_rank() {
  thread_local std::unique_ptr<WorkerPool> pool;
  const int want = workers_per_rank();
  if (pool == nullptr || pool->workers() != want) {
    pool.reset();  // join the old helpers before spawning the new set
    pool = std::make_unique<WorkerPool>(want);
  }
  return *pool;
}

}  // namespace slspvr::core
