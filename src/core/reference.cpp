#include "core/reference.hpp"

#include <stdexcept>

namespace slspvr::core {

img::Image composite_reference(std::span<const img::Image> subimages,
                               std::span<const int> front_to_back) {
  if (subimages.empty()) throw std::invalid_argument("composite_reference: no images");
  img::Image out(subimages[0].width(), subimages[0].height());
  // Accumulate front-to-back: out stays in front of each new layer.
  for (const int rank : front_to_back) {
    const img::Image& layer = subimages[static_cast<std::size_t>(rank)];
    for (std::int64_t i = 0; i < out.pixel_count(); ++i) {
      out.at_index(i) = img::over(out.at_index(i), layer.at_index(i));
    }
  }
  return out;
}

}  // namespace slspvr::core
