#include "core/plan_compositor.hpp"

#include <stdexcept>

#include "core/engine.hpp"

namespace slspvr::core {

ExchangePlan PlanCompositor::plan_for(int ranks) const {
  const SplitRule split = SplitRule::kBalanced;
  switch (family_) {
    case PlanFamily::kBinarySwap: return binary_swap_plan(ranks, split);
    case PlanFamily::kKary: return kary_plan(ranks, split);
    case PlanFamily::kDirectSend: return direct_send_plan(ranks);
    case PlanFamily::kBinaryTree: return binary_tree_plan(ranks);
  }
  throw std::invalid_argument("PlanCompositor: unknown plan family");
}

Ownership PlanCompositor::composite(mp::Comm& comm, img::Image& image,
                                    const SwapOrder& order, Counters& counters,
                                    EngineContext& engine) const {
  return plan_composite(plan_for(comm.size()), codec_for(codec_), tracker_, comm, image,
                        order, counters, engine);
}

check::CommSchedule PlanCompositor::schedule(int ranks) const {
  return derive_schedule(plan_for(ranks), codec_for(codec_).traits(), name_);
}

std::optional<ExchangePlan> PlanCompositor::resume_plan(int ranks) const {
  // Mid-frame repair replays per-rank rectangle state, which only the
  // balanced-split families with non-scalar payloads carry.
  const bool balanced_rect =
      (family_ == PlanFamily::kBinarySwap || family_ == PlanFamily::kKary) &&
      !codec_for(codec_).scalar();
  if (!balanced_rect) return std::nullopt;
  return plan_for(ranks);
}

}  // namespace slspvr::core
