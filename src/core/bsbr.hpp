// BSBR: binary-swap with bounding rectangle (Sec. 3.2).
//
// Each PE tracks the bounding rectangle of its non-blank pixels (one O(A)
// scan before the first stage — the T_bound term). At each stage the send
// half ships only the portion of the bounding rectangle falling in it (plus
// an 8-byte rectangle header), and the local rectangle is updated by
// combining the kept portion with the received rectangle — O(1) per stage.
// The known weakness: every pixel inside the rectangle ships, blank or not.
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class BsbrCompositor final : public Compositor {
 public:
  [[nodiscard]] std::string_view name() const override { return "BSBR"; }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

  [[nodiscard]] std::optional<ExchangePlan> resume_plan(int ranks) const override {
    return binary_swap_plan(ranks);
  }
};

}  // namespace slspvr::core
