// BSBRC: binary-swap with bounding rectangle AND run-length encoding
// (Sec. 3.4) — the paper's best method.
//
// Combines the two ideas so each cancels the other's weakness: the encoder
// only iterates pixels inside the sending bounding rectangle (cheap T_encode
// over A_send^k instead of A/2^k), and the wire carries only the rectangle
// header, the codes and the non-blank pixels (no blank filler, unlike BSBR).
// This is a faithful implementation of the BSBRC(P) algorithm listing.
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class BsbrcCompositor final : public Compositor {
 public:
  /// `tight_rescan` replaces the paper's O(1) rectangle update (line 21:
  /// union of kept and received rectangles) with a full rescan of the kept
  /// region each stage — a tighter rectangle at O(region) extra scan cost.
  /// Used by the rectangle-update ablation; the paper's method is the
  /// default.
  explicit BsbrcCompositor(bool tight_rescan = false) : tight_rescan_(tight_rescan) {}

  [[nodiscard]] std::string_view name() const override {
    return tight_rescan_ ? "BSBRC-tight" : "BSBRC";
  }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

  [[nodiscard]] std::optional<ExchangePlan> resume_plan(int ranks) const override {
    return binary_swap_plan(ranks);
  }

 private:
  bool tight_rescan_;
};

}  // namespace slspvr::core
