// Depth ordering for compositing.
//
// `over` is associative but not commutative, so every compositing method
// needs to know, for each exchange, which contribution is in front. For
// binary swap the pair at stage k differs in rank bit (k-1), which the
// kd partitioner ties to a single split axis; the front side is determined
// by the sign of the view direction along that axis. Tree/pipeline/direct
// methods additionally need the total front-to-back order of ranks, which
// is the standard near-first BSP traversal.
#pragma once

#include <vector>

#include "volume/partition.hpp"

namespace slspvr::core {

struct SwapOrder {
  int levels = 0;
  /// lower_front_per_bit[b]: the rank whose bit b is 0 (the lower-coordinate
  /// side of that split) is in front.
  std::vector<bool> lower_front_per_bit;
  /// All ranks sorted front-to-back (BSP near-first traversal).
  std::vector<int> front_to_back;

  [[nodiscard]] int ranks() const noexcept { return 1 << levels; }

  /// During the stage pairing on `bit`, is the *partner's* contribution in
  /// front of `my_rank`'s?
  [[nodiscard]] bool incoming_in_front(int my_rank, int bit) const {
    const bool my_side_lower = ((my_rank >> bit) & 1) == 0;
    const bool i_am_front = my_side_lower == static_cast<bool>(lower_front_per_bit[bit]);
    return !i_am_front;
  }

  /// Depth position of a rank (0 = front-most).
  [[nodiscard]] int depth_position(int rank) const {
    for (std::size_t i = 0; i < front_to_back.size(); ++i) {
      if (front_to_back[i] == rank) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Build the order from a kd partition and the camera view direction (rays
/// travel along +view_dir).
[[nodiscard]] SwapOrder make_swap_order(const vol::KdPartition& partition,
                                        const float view_dir[3]);

/// Order for a 1-D slab decomposition along `axis` with `ranks` slabs in
/// ascending coordinate order (used by the non-power-of-two fold wrapper;
/// `ranks` must be a power of two — it is the folded group count).
[[nodiscard]] SwapOrder make_slab_order(int ranks, int axis, const float view_dir[3]);

/// Uniform order with every bit's lower side in front (front_to_back is
/// simply 0..2^levels-1). Handy for synthetic-workload tests and benches
/// where no geometry backs the depth relation.
[[nodiscard]] SwapOrder make_uniform_order(int levels, bool lower_front = true);

}  // namespace slspvr::core
