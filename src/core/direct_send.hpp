// Direct-send / buffered compositing (Hsu 1993, Neumann 1993 — the
// "buffered case" of Sec. 2).
//
// The image is statically divided into P horizontal bands, band r owned by
// rank r. Every rank sends, to each other rank, its pixels of that rank's
// band — n-1 messages in and out at once. The receiver buffers all n-1
// contributions, then composites them (plus its own) in depth order. The
// full-frame variant ships whole bands; the sparse variant clips each
// contribution to the sender's bounding rectangle (8-byte header + pixels),
// giving a buffered-case counterpart to BSBR.
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class DirectSendCompositor final : public Compositor {
 public:
  explicit DirectSendCompositor(bool sparse = false) : sparse_(sparse) {}

  [[nodiscard]] std::string_view name() const override {
    return sparse_ ? "DirectSend-sparse" : "DirectSend-full";
  }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

  /// The horizontal band owned by `rank` out of `ranks` for `bounds`.
  [[nodiscard]] static img::Rect band_of(const img::Rect& bounds, int rank, int ranks);

 private:
  bool sparse_;
};

}  // namespace slspvr::core
