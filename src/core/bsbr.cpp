#include "core/bsbr.hpp"

#include "core/wire.hpp"

namespace slspvr::core {

Ownership BsbrCompositor::composite(mp::Comm& comm, img::Image& image,
                                    const SwapOrder& order, Counters& counters) const {
  img::Rect region = image.bounds();
  // First-stage O(A) scan for the local bounding rectangle (T_bound).
  img::Rect local_rect = img::bounding_rect_of(image, region, &counters.rect_scanned);

  for (int k = 1; k <= order.levels; ++k) {
    comm.set_stage(k);
    const int bit = k - 1;
    const int partner = comm.rank() ^ (1 << bit);
    const bool keep_low = ((comm.rank() >> bit) & 1) == 0;

    const auto halves = img::split_centerline(region);
    const img::Rect keep = keep_low ? halves[0] : halves[1];
    const img::Rect give = keep_low ? halves[1] : halves[0];

    // Sending bounding rectangle: the part of our rectangle we give away.
    const img::Rect send_rect = img::intersect(local_rect, give);

    img::PackBuffer buf;
    buf.put(img::to_wire(send_rect));
    if (!send_rect.empty()) {
      wire::pack_rect_pixels(image, send_rect, buf);
      counters.pixels_sent += send_rect.area();
    }

    const auto received = comm.sendrecv(partner, k, buf.bytes());
    img::UnpackBuffer in(received);
    const img::Rect recv_rect = wire::parse_rect(in, image.bounds());
    if (!recv_rect.empty()) {
      wire::unpack_composite_rect(image, recv_rect, in,
                                  order.incoming_in_front(comm.rank(), bit), counters);
    }

    // New local rectangle: kept portion combined with what arrived (O(1)).
    local_rect = img::bounding_union(img::intersect(local_rect, keep), recv_rect);
    region = keep;
    counters.mark_stage();
  }
  comm.set_stage(0);
  return Ownership::full_rect(region);
}


check::CommSchedule BsbrCompositor::schedule(int ranks) const {
  // Bounding-rectangle clipped raw pixels behind an 8 B WireRect header.
  return check::binary_swap_family_schedule(name(), ranks, check::PayloadClass::kBoundingRect,
                                            16, 8, false);
}

}  // namespace slspvr::core
