#include "core/bsbr.hpp"

#include "core/engine.hpp"

namespace slspvr::core {

Ownership BsbrCompositor::composite(mp::Comm& comm, img::Image& image,
                                    const SwapOrder& order, Counters& counters,
                                    EngineContext& engine) const {
  return plan_composite(binary_swap_plan(comm.size()), codec_for(CodecKind::kBoundingRect),
                        TrackerKind::kUnion, comm, image, order, counters, engine);
}


check::CommSchedule BsbrCompositor::schedule(int ranks) const {
  return derive_schedule(binary_swap_plan(ranks),
                         codec_for(CodecKind::kBoundingRect).traits(), name());
}

}  // namespace slspvr::core
