#include "core/wire.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "image/kernels.hpp"

namespace slspvr::core::wire {

namespace {

/// Staging area for the BSLC strided gather/scatter kernels: interleaved
/// progressions are gathered contiguous here so the batched
/// classify/composite kernels can run over them, then scattered back. One
/// arena per calling thread — with the tile-parallel engine that means one
/// per pool worker, since each worker thread that reaches these legacy
/// paths gets its own copy (the band-parallel streaming decoders use the
/// explicit per-worker EngineScratch instead).
std::vector<img::Pixel>& strided_scratch(std::int64_t count) {
  thread_local std::vector<img::Pixel> scratch;
  if (static_cast<std::int64_t>(scratch.size()) < count) {
    scratch.resize(static_cast<std::size_t>(count));
  }
  return scratch;
}

/// Reinterpret a borrowed wire section as `T[count]`, bouncing through
/// `bounce` when the in-buffer address is not aligned for T (pixel payloads
/// sit 2-mod-4 after an odd code count). The returned pointer aliases either
/// the message or the bounce vector.
template <typename T>
const T* typed_view(std::span<const std::byte> bytes, std::size_t count,
                    std::vector<T>& bounce) {
  if ((reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(T)) == 0) {
    return reinterpret_cast<const T*>(bytes.data());
  }
  bounce.resize(count);
  std::memcpy(bounce.data(), bytes.data(), count * sizeof(T));
  return bounce.data();
}

}  // namespace

void pack_rect_pixels(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf) {
  for (int y = rect.y0; y < rect.y1; ++y) {
    const img::Pixel* row = &image.at(rect.x0, y);
    buf.put_span(std::span<const img::Pixel>(row, static_cast<std::size_t>(rect.width())));
  }
}

void unpack_composite_rect(img::Image& image, const img::Rect& rect, img::UnpackBuffer& buf,
                           bool incoming_in_front, Counters& counters) {
  for (int y = rect.y0; y < rect.y1; ++y) {
    const auto row = buf.get_vector<img::Pixel>(static_cast<std::size_t>(rect.width()));
    img::kern::composite_span(&image.at(rect.x0, y), row.data(), rect.width(),
                              incoming_in_front);
  }
  counters.over_ops += rect.area();
  counters.pixels_received += rect.area();
}

img::Rle encode_rect(const img::Image& image, const img::Rect& rect, Counters& counters) {
  // Row-at-a-time run classification; RunState carries runs across row
  // boundaries so the codes equal the single-sequence encoding exactly.
  img::Rle rle;
  rle.length = rect.area();
  img::kern::RunState state;
  for (int y = rect.y0; y < rect.y1; ++y) {
    img::kern::rle_classify_span(&image.at(rect.x0, y), rect.width(), state, rle);
  }
  if (rle.length > 0) img::kern::rle_classify_flush(state, rle);
  counters.encoded_pixels += rect.area();
  counters.codes_emitted += static_cast<std::int64_t>(rle.codes.size());
  return rle;
}

img::Rle encode_strided(const img::Image& image, const img::InterleavedRange& range,
                        Counters& counters) {
  return encode_strided_base(image.pixels().data(), range, counters);
}

img::Rle encode_strided_base(const img::Pixel* base, const img::InterleavedRange& range,
                             Counters& counters) {
  // Gather the interleaved progression contiguous, then classify it with
  // the same batched kernel the rectangle path uses.
  std::vector<img::Pixel>& scratch = strided_scratch(range.count);
  img::kern::gather_strided(base, range.offset, range.stride, range.count, scratch.data());
  img::Rle rle;
  rle.length = range.count;
  img::kern::RunState state;
  img::kern::rle_classify_span(scratch.data(), range.count, state, rle);
  if (range.count > 0) img::kern::rle_classify_flush(state, rle);
  counters.encoded_pixels += range.count;
  counters.codes_emitted += static_cast<std::int64_t>(rle.codes.size());
  return rle;
}

void pack_rle(const img::Rle& rle, img::PackBuffer& buf) {
  buf.put_span(std::span<const std::uint16_t>(rle.codes));
  buf.put_span(std::span<const img::Pixel>(rle.pixels));
}

img::Rle parse_rle(img::UnpackBuffer& buf, std::int64_t expected_length) {
  img::Rle rle;
  rle.length = expected_length;
  std::int64_t total = 0;
  std::int64_t foreground = 0;
  bool blank = true;
  while (total < expected_length) {
    const auto code = buf.get<std::uint16_t>();
    rle.codes.push_back(code);
    total += code;
    if (!blank) foreground += code;
    blank = !blank;
  }
  if (total != expected_length) {
    throw img::DecodeError("parse_rle: codes overshoot the expected length (" +
                           std::to_string(total) + " > " + std::to_string(expected_length) +
                           ")");
  }
  rle.pixels = buf.get_vector<img::Pixel>(static_cast<std::size_t>(foreground));
  return rle;
}

img::Rect parse_rect(img::UnpackBuffer& buf, const img::Rect& bounds) {
  const img::Rect rect = img::from_wire(buf.get<img::WireRect>());
  if (rect.empty()) return img::kEmptyRect;
  if (!bounds.contains(rect)) {
    throw img::DecodeError("parse_rect: rectangle [" + std::to_string(rect.x0) + "," +
                           std::to_string(rect.y0) + "," + std::to_string(rect.x1) + "," +
                           std::to_string(rect.y1) + ") escapes the frame [" +
                           std::to_string(bounds.x0) + "," + std::to_string(bounds.y0) + "," +
                           std::to_string(bounds.x1) + "," + std::to_string(bounds.y1) + ")");
  }
  return rect;
}

void composite_rle_rect(img::Image& image, const img::Rect& rect, const img::Rle& rle,
                        bool incoming_in_front, Counters& counters) {
  const int w = rect.width();
  std::int64_t composited = 0;
  // Whole runs at a time, split only where a run crosses a rectangle row.
  img::rle_for_each_non_blank_run(
      rle, [&](std::int64_t pos, std::int64_t len, const img::Pixel* pixels) {
        while (len > 0) {
          const int x = rect.x0 + static_cast<int>(pos % w);
          const int y = rect.y0 + static_cast<int>(pos / w);
          const std::int64_t chunk = std::min<std::int64_t>(len, rect.x1 - x);
          img::kern::composite_span(&image.at(x, y), pixels, chunk, incoming_in_front);
          pos += chunk;
          pixels += chunk;
          len -= chunk;
          composited += chunk;
        }
      });
  counters.over_ops += composited;
  counters.pixels_received += composited;
}

void composite_rle_strided(img::Image& image, const img::InterleavedRange& range,
                           const img::Rle& rle, bool incoming_in_front, Counters& counters) {
  std::int64_t composited = 0;
  // Per run: gather the local strided pixels contiguous, blend the whole
  // run with the span kernel, scatter the result back (O(non-blank) work).
  img::rle_for_each_non_blank_run(
      rle, [&](std::int64_t pos, std::int64_t len, const img::Pixel* pixels) {
        std::vector<img::Pixel>& scratch = strided_scratch(len);
        const std::int64_t offset = range.index(pos);
        img::kern::gather_strided(image.pixels().data(), offset, range.stride, len,
                                  scratch.data());
        img::kern::composite_span(scratch.data(), pixels, len, incoming_in_front);
        img::kern::scatter_strided(scratch.data(), len, image.pixels().data(), offset,
                                   range.stride);
        composited += len;
      });
  counters.over_ops += composited;
  counters.pixels_received += composited;
}

void pack_raw_rect(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf,
                   Counters& counters) {
  buf.put(img::to_wire(rect));
  if (!rect.empty()) {
    pack_rect_pixels(image, rect, buf);
    counters.pixels_sent += rect.area();
  }
}

img::Rect unpack_composite_raw_rect(img::Image& image, img::UnpackBuffer& buf,
                                    const img::Rect& bounds, bool incoming_in_front,
                                    Counters& counters) {
  const img::Rect rect = parse_rect(buf, bounds);
  if (!rect.empty()) {
    unpack_composite_rect(image, rect, buf, incoming_in_front, counters);
  }
  return rect;
}

void pack_rle_rect(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf,
                   Counters& counters) {
  buf.put(img::to_wire(rect));
  if (!rect.empty()) {
    const img::Rle rle = encode_rect(image, rect, counters);
    counters.pixels_sent += rle.non_blank_count();
    pack_rle(rle, buf);
  }
}

img::Rect unpack_composite_rle_rect(img::Image& image, img::UnpackBuffer& buf,
                                    const img::Rect& bounds, bool incoming_in_front,
                                    Counters& counters) {
  const img::Rect rect = parse_rect(buf, bounds);
  if (!rect.empty()) {
    const img::Rle incoming = parse_rle(buf, rect.area());
    composite_rle_rect(image, rect, incoming, incoming_in_front, counters);
  }
  return rect;
}

void pack_span_rect(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf,
                    Counters& counters) {
  buf.put(img::to_wire(rect));
  if (!rect.empty()) {
    const img::SpanImage spans = encode_spans(image, rect, counters);
    counters.pixels_sent += spans.non_blank_count();
    pack_spans(spans, buf);
  }
}

img::Rect unpack_composite_span_rect(img::Image& image, img::UnpackBuffer& buf,
                                     const img::Rect& bounds, bool incoming_in_front,
                                     Counters& counters) {
  const img::Rect rect = parse_rect(buf, bounds);
  if (!rect.empty()) {
    const img::SpanImage incoming = parse_spans(buf, rect);
    composite_spans(image, incoming, incoming_in_front, counters);
  }
  return rect;
}

img::SpanImage encode_spans(const img::Image& image, const img::Rect& rect,
                            Counters& counters) {
  std::int64_t scanned = 0;
  img::SpanImage spans = img::span_encode_rect(image, rect, &scanned);
  counters.encoded_pixels += scanned;
  // 2-byte units: one per row count, two per span (offset + length).
  counters.codes_emitted += static_cast<std::int64_t>(spans.row_counts.size()) +
                            2 * static_cast<std::int64_t>(spans.spans.size());
  return spans;
}

void pack_spans(const img::SpanImage& spans, img::PackBuffer& buf) {
  buf.put_span(std::span<const std::uint16_t>(spans.row_counts));
  buf.put_span(std::span<const img::Span>(spans.spans));
  buf.put_span(std::span<const img::Pixel>(spans.pixels));
}

img::SpanImage parse_spans(img::UnpackBuffer& buf, const img::Rect& rect) {
  img::SpanImage spans;
  spans.rect = rect;
  if (rect.empty()) return spans;
  spans.row_counts = buf.get_vector<std::uint16_t>(static_cast<std::size_t>(rect.height()));
  std::size_t total_spans = 0;
  for (const auto c : spans.row_counts) total_spans += c;
  spans.spans = buf.get_vector<img::Span>(total_spans);
  // A corrupted span must not index outside the rectangle when composited.
  for (const img::Span& s : spans.spans) {
    if (static_cast<int>(s.x) + static_cast<int>(s.len) > rect.width()) {
      throw img::DecodeError("parse_spans: span [" + std::to_string(s.x) + "+" +
                             std::to_string(s.len) + "] exceeds rectangle width " +
                             std::to_string(rect.width()));
    }
  }
  std::size_t total_pixels = 0;
  for (const auto& s : spans.spans) total_pixels += s.len;
  spans.pixels = buf.get_vector<img::Pixel>(total_pixels);
  return spans;
}

void composite_spans(img::Image& image, const img::SpanImage& spans,
                     bool incoming_in_front, Counters& counters) {
  const std::int64_t ops = img::span_composite(image, spans, incoming_in_front);
  counters.over_ops += ops;
  counters.pixels_received += ops;
}

RleView parse_rle_view(img::UnpackBuffer& buf, std::int64_t expected_length,
                       std::vector<img::Pixel>& pixel_bounce,
                       std::vector<std::uint16_t>& code_bounce) {
  // Prescan the code section in place (memcpy per 2-byte code — alignment-
  // agnostic) to find where it ends, exactly mirroring parse_rle: stop as
  // soon as the total reaches the expected length, throw on overshoot, and
  // let truncation surface as a short read.
  const std::span<const std::byte> rest = buf.peek_remaining();
  std::size_t ncodes = 0;
  std::int64_t total = 0;
  std::int64_t foreground = 0;
  bool blank = true;
  while (total < expected_length) {
    if ((ncodes + 1) * sizeof(std::uint16_t) > rest.size()) {
      throw img::DecodeError("parse_rle_view: short read (codes truncated at " +
                             std::to_string(total) + " of " +
                             std::to_string(expected_length) + " pixels)");
    }
    std::uint16_t code = 0;
    std::memcpy(&code, rest.data() + ncodes * sizeof(std::uint16_t), sizeof(code));
    ++ncodes;
    total += code;
    if (!blank) foreground += code;
    blank = !blank;
  }
  if (total != expected_length) {
    throw img::DecodeError("parse_rle_view: codes overshoot the expected length (" +
                           std::to_string(total) + " > " + std::to_string(expected_length) +
                           ")");
  }
  RleView view;
  view.ncodes = ncodes;
  view.non_blank = foreground;
  view.codes = typed_view(buf.get_bytes(ncodes * sizeof(std::uint16_t)), ncodes, code_bounce);
  view.pixels =
      typed_view(buf.get_bytes(static_cast<std::size_t>(foreground) * sizeof(img::Pixel)),
                 static_cast<std::size_t>(foreground), pixel_bounce);
  return view;
}

SpanView parse_spans_view(img::UnpackBuffer& buf, const img::Rect& rect,
                          std::vector<img::Pixel>& pixel_bounce) {
  SpanView view;
  if (rect.empty()) return view;
  const auto height = static_cast<std::size_t>(rect.height());
  // row_counts and spans are 2-byte-aligned by construction (they follow an
  // 8-byte header and 2-byte-multiple sections), so these views never
  // bounce; the DecodeError checks match parse_spans exactly.
  const std::span<const std::byte> counts_bytes = buf.get_bytes(height * sizeof(std::uint16_t));
  thread_local std::vector<std::uint16_t> counts_bounce;
  view.row_counts = typed_view(counts_bytes, height, counts_bounce);
  std::size_t total_spans = 0;
  for (std::size_t r = 0; r < height; ++r) total_spans += view.row_counts[r];
  thread_local std::vector<img::Span> span_bounce;
  view.spans = typed_view(buf.get_bytes(total_spans * sizeof(img::Span)), total_spans,
                          span_bounce);
  view.nspans = total_spans;
  std::size_t total_pixels = 0;
  for (std::size_t s = 0; s < total_spans; ++s) {
    const img::Span& span = view.spans[s];
    // A corrupted span must not index outside the rectangle when composited.
    if (static_cast<int>(span.x) + static_cast<int>(span.len) > rect.width()) {
      throw img::DecodeError("parse_spans_view: span [" + std::to_string(span.x) + "+" +
                             std::to_string(span.len) + "] exceeds rectangle width " +
                             std::to_string(rect.width()));
    }
    total_pixels += span.len;
  }
  view.pixels = typed_view(buf.get_bytes(total_pixels * sizeof(img::Pixel)), total_pixels,
                           pixel_bounce);
  view.non_blank = static_cast<std::int64_t>(total_pixels);
  return view;
}

}  // namespace slspvr::core::wire
