// BS: the plain binary-swap compositing method (Ma et al. 1994, Sec. 3.1).
//
// At stage k each PE pairs with the rank differing in bit (k-1), ships the
// half of its current region it gives up — every pixel, blank or not — and
// composites the half it keeps with the received half. log P stages; total
// pixels shipped per PE: sum_k A/2^k (Eq. 1/2). This is the baseline the
// three proposed methods improve on.
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class BinarySwapCompositor final : public Compositor {
 public:
  [[nodiscard]] std::string_view name() const override { return "BS"; }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

  [[nodiscard]] std::optional<ExchangePlan> resume_plan(int ranks) const override {
    return binary_swap_plan(ranks);
  }
};

}  // namespace slspvr::core
