// Parallel-pipeline compositing with direct pixel forwarding (Lee et al.
// 1996, described in Sec. 2), adapted to volume-rendering `over`.
//
// The image is divided into P bands; every band circulates once around a
// ring of the P processors, accumulating each processor's contribution, and
// retires at its owner after P-1 message steps. Messages carry only
// non-blank pixels with explicit x/y coordinates (20 bytes each) — the
// "explicit coordinates" scheme the paper contrasts with run-length codes.
//
// Adaptation for non-commutative `over`: Lee's original targets polygon
// rendering, where merging is a commutative depth test. Ring order visits
// processors in a *rotation* of the depth order, which is not a valid over
// order. We therefore arrange the ring in front-to-back order and carry two
// partial composites per band — segment A (processors visited before the
// wrap) and segment B (after the wrap). Both segments are depth-contiguous,
// so each accumulates correctly, and the band owner finishes with
// B over A (B is the front segment). This preserves Lee's traffic pattern
// exactly while producing the correct volume-rendered image.
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class ParallelPipelineCompositor final : public Compositor {
 public:
  [[nodiscard]] std::string_view name() const override { return "Pipeline-DPF"; }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;
};

}  // namespace slspvr::core
