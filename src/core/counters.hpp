// Per-rank computation counters.
//
// The paper's T_comp terms (Eqs. 1/3/5/7) are linear in four quantities:
// over operations, pixels run-length scanned, pixels scanned for bounding
// rectangles, and emitted run-length codes. Every compositor counts them
// exactly while executing; the cost model converts them to modelled ms.
#pragma once

#include <cstdint>
#include <vector>

namespace slspvr::core {

/// The six operation totals the cost model consumes.
struct OpTotals {
  std::int64_t over_ops = 0;        ///< pixel over operations (T_o term)
  std::int64_t encoded_pixels = 0;  ///< pixels iterated by the RLE encoder (T_encode term)
  std::int64_t rect_scanned = 0;    ///< pixels scanned to find bounding rects (T_bound term)
  std::int64_t codes_emitted = 0;   ///< run-length codes generated (R_code count)
  std::int64_t pixels_sent = 0;     ///< pixel payloads shipped (diagnostics)
  std::int64_t pixels_received = 0; ///< pixel payloads received (diagnostics)

  friend bool operator==(const OpTotals&, const OpTotals&) = default;

  [[nodiscard]] OpTotals operator-(const OpTotals& o) const noexcept {
    return OpTotals{over_ops - o.over_ops,
                    encoded_pixels - o.encoded_pixels,
                    rect_scanned - o.rect_scanned,
                    codes_emitted - o.codes_emitted,
                    pixels_sent - o.pixels_sent,
                    pixels_received - o.pixels_received};
  }
};

/// Per-rank computation counters, with optional per-stage snapshots:
/// compositors call mark_stage() after finishing each stage's work, so the
/// timeline model can recover stage-local deltas (stage_delta).
struct Counters : OpTotals {
  /// Cumulative totals at the end of each completed stage.
  std::vector<OpTotals> stage_marks;

  [[nodiscard]] const OpTotals& totals() const noexcept { return *this; }

  /// Record the end of the current stage.
  void mark_stage() { stage_marks.push_back(totals()); }

  /// Operation counts attributable to stage k (1-based). Stages beyond the
  /// recorded marks (e.g. retired binary-tree ranks) report zeros.
  [[nodiscard]] OpTotals stage_delta(int stage) const noexcept {
    const std::size_t idx = static_cast<std::size_t>(stage - 1);
    if (stage < 1 || idx >= stage_marks.size()) return OpTotals{};
    if (idx == 0) return stage_marks[0];
    return stage_marks[idx] - stage_marks[idx - 1];
  }

  [[nodiscard]] int marked_stages() const noexcept {
    return static_cast<int>(stage_marks.size());
  }

  Counters& operator+=(const Counters& o) noexcept {
    over_ops += o.over_ops;
    encoded_pixels += o.encoded_pixels;
    rect_scanned += o.rect_scanned;
    codes_emitted += o.codes_emitted;
    pixels_sent += o.pixels_sent;
    pixels_received += o.pixels_received;
    return *this;
  }
};

}  // namespace slspvr::core
