#include "core/binary_tree.hpp"

#include "core/plan.hpp"
#include "image/pack.hpp"
#include "image/value_rle.hpp"

namespace slspvr::core {

Ownership BinaryTreeCompositor::composite(mp::Comm& comm, img::Image& image,
                                          const SwapOrder& order, Counters& counters,
                                          EngineContext& /*engine*/) const {
  // Initial compression of the whole subimage (counted as encode work).
  std::vector<img::ValueRun> runs = img::value_rle_encode(image.pixels());
  counters.encoded_pixels += image.pixel_count();
  counters.codes_emitted += static_cast<std::int64_t>(runs.size());

  for (int k = 1; k <= order.levels; ++k) {
    comm.set_stage(k);
    const int bit = k - 1;
    const int low_mask = (1 << k) - 1;
    const int low = comm.rank() & low_mask;
    if (low == 0) {
      // Receiver: partner is rank + 2^(k-1); merge in the compressed domain.
      const int partner = comm.rank() | (1 << bit);
      const auto incoming = comm.recv_vector<img::ValueRun>(partner, k);
      counters.pixels_received += img::value_rle_length(incoming);
      const bool incoming_front = order.incoming_in_front(comm.rank(), bit);
      runs = incoming_front ? img::value_rle_composite(incoming, runs, &counters.over_ops)
                            : img::value_rle_composite(runs, incoming, &counters.over_ops);
    } else if (low == (1 << bit)) {
      // Sender: ship the compressed image and retire.
      const int partner = comm.rank() ^ (1 << bit);
      counters.pixels_sent += img::value_rle_length(runs);
      comm.send_vector<img::ValueRun>(partner, k, runs);
      runs.clear();
    }
    // Ranks already retired (low has bits below `bit` set) do nothing.
    counters.mark_stage();
  }
  comm.set_stage(0);

  if (comm.rank() == 0 && !runs.empty()) {
    img::value_rle_decode(runs, image.pixels());
  }
  return Ownership::full_at_root();
}


check::CommSchedule BinaryTreeCompositor::schedule(int ranks) const {
  // Value-RLE of the rank's full frame: worst case one 20-byte run per
  // pixel. The composite above keeps its compressed-domain merge, but its
  // exchange structure is the shared tree plan.
  return derive_schedule(binary_tree_plan(ranks),
                         WireTraits{check::PayloadClass::kFullRegion, 0, 20, 0, true},
                         name());
}

}  // namespace slspvr::core
