#include "core/compositor.hpp"

#include <cstdint>

#include "core/wire.hpp"
#include "core/worker_pool.hpp"
#include "image/kernels.hpp"
#include "image/pack.hpp"

namespace slspvr::core {

Ownership Compositor::composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                                Counters& counters) const {
  EngineContext engine;  // single worker, fused decode — the defaults
  return composite(comm, image, order, counters, engine);
}

namespace {

constexpr int kGatherTag = 900;

struct GatherHeader {
  std::int32_t kind = 0;
  std::int32_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  std::int64_t offset = 0, stride = 1, count = 0;
};

}  // namespace

img::Image gather_final(mp::Comm& comm, const img::Image& local, const Ownership& ownership,
                        int root) {
  comm.set_stage(0);  // gather traffic is outside the measured phase

  img::PackBuffer buf;
  GatherHeader header;
  header.kind = static_cast<std::int32_t>(ownership.kind);
  switch (ownership.kind) {
    case Ownership::Kind::kRect: {
      const img::Rect& r = ownership.rect;
      header.x0 = r.x0;
      header.y0 = r.y0;
      header.x1 = r.x1;
      header.y1 = r.y1;
      buf.put(header);
      wire::pack_rect_pixels(local, r, buf);
      break;
    }
    case Ownership::Kind::kInterleaved: {
      header.offset = ownership.range.offset;
      header.stride = ownership.range.stride;
      header.count = ownership.range.count;
      buf.put(header);
      for (std::int64_t i = 0; i < ownership.range.count; ++i) {
        buf.put(local.at_index(ownership.range.index(i)));
      }
      break;
    }
    case Ownership::Kind::kFullAtRoot:
      buf.put(header);  // no payload: either we are root or we own nothing
      break;
  }

  if (comm.rank() != root) {
    comm.send(root, kGatherTag, buf.bytes());
    return {};
  }

  img::Image out(local.width(), local.height());
  const auto place = [&](std::span<const std::byte> bytes, const img::Image* own) {
    img::UnpackBuffer in(bytes);
    const auto h = in.get<GatherHeader>();
    switch (static_cast<Ownership::Kind>(h.kind)) {
      case Ownership::Kind::kRect: {
        const img::Rect r{h.x0, h.y0, h.x1, h.y1};
        // Each placed row is written exactly once and never re-read this
        // frame, so stream it straight from the message with non-temporal
        // stores (44-byte header keeps the payload 4-aligned for Pixel; fall
        // back to the copying read if a transport ever hands us worse).
        for (int y = r.y0; y < r.y1; ++y) {
          const auto n = static_cast<std::size_t>(r.width());
          const std::span<const std::byte> bytes = in.get_bytes(n * sizeof(img::Pixel));
          if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(img::Pixel) == 0) {
            img::kern::copy_span_nt(&out.at(r.x0, y),
                                    reinterpret_cast<const img::Pixel*>(bytes.data()),
                                    r.width());
          } else {
            std::vector<img::Pixel> row(n);
            std::memcpy(row.data(), bytes.data(), n * sizeof(img::Pixel));
            img::kern::copy_span_nt(&out.at(r.x0, y), row.data(), r.width());
          }
        }
        break;
      }
      case Ownership::Kind::kInterleaved: {
        const img::InterleavedRange range{h.offset, h.stride, h.count};
        for (std::int64_t i = 0; i < range.count; ++i) {
          out.at_index(range.index(i)) = in.get<img::Pixel>();
        }
        break;
      }
      case Ownership::Kind::kFullAtRoot:
        // The root already holds the whole image: stream it into the output
        // frame (freshly allocated, write-once) instead of a caching copy.
        if (own != nullptr) {
          img::kern::copy_span_nt(out.pixels().data(), own->pixels().data(),
                                  out.pixel_count());
        }
        break;
    }
  };

  place(buf.bytes(), &local);
  for (int r = 0; r < comm.size(); ++r) {
    if (r == root) continue;
    const auto bytes = comm.recv(r, kGatherTag);
    place(bytes, nullptr);
  }
  return out;
}

}  // namespace slspvr::core
