#include "core/timeline.hpp"

#include <algorithm>

namespace slspvr::core {

namespace {

/// Pre-exchange work of a stage: everything that happens before the send
/// (bounding-rectangle scans and run-length encoding).
double pre_ms(const OpTotals& d, const CostModel& m) {
  return m.tencode_ms_per_pixel * static_cast<double>(d.encoded_pixels) +
         m.tbound_ms_per_pixel * static_cast<double>(d.rect_scanned);
}

/// Post-exchange work: compositing the received pixels.
double post_ms(const OpTotals& d, const CostModel& m) {
  return m.to_ms_per_pixel * static_cast<double>(d.over_ops);
}

}  // namespace

TimelineResult simulate_timeline(const std::vector<Counters>& per_rank,
                                 const mp::TrafficTrace& trace, const CostModel& model) {
  const int ranks = static_cast<int>(per_rank.size());
  int stages = 0;
  for (const auto& c : per_rank) stages = std::max(stages, c.marked_stages());

  std::vector<double> ready(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> wait(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> busy(static_cast<std::size_t>(ranks), 0.0);  // work + wire only

  for (int k = 1; k <= stages; ++k) {
    // Send points first (they depend only on the previous stage).
    std::vector<double> send_point(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      const double pre = pre_ms(per_rank[static_cast<std::size_t>(r)].stage_delta(k), model);
      send_point[static_cast<std::size_t>(r)] = ready[static_cast<std::size_t>(r)] + pre;
      busy[static_cast<std::size_t>(r)] += pre;
    }
    for (int r = 0; r < ranks; ++r) {
      double arrival = send_point[static_cast<std::size_t>(r)];
      double wire = 0.0;
      for (const auto& rec : trace.received(r)) {
        if (rec.stage != k || rec.tag < 0) continue;
        const double msg_wire = model.ts_ms + model.tc_ms_per_byte * static_cast<double>(rec.bytes);
        wire += msg_wire;
        // Rendezvous: the transfer starts once BOTH sides reach the
        // exchange; the wire time is then always paid by the receiver.
        const double start = std::max(send_point[static_cast<std::size_t>(r)],
                                      send_point[static_cast<std::size_t>(rec.peer)]);
        arrival = std::max(arrival, start + msg_wire);
      }
      const double blocked = arrival - send_point[static_cast<std::size_t>(r)];
      wait[static_cast<std::size_t>(r)] += std::max(0.0, blocked - wire);
      busy[static_cast<std::size_t>(r)] += wire;
      const double post =
          post_ms(per_rank[static_cast<std::size_t>(r)].stage_delta(k), model);
      busy[static_cast<std::size_t>(r)] += post;
      ready[static_cast<std::size_t>(r)] = arrival + post;
    }
  }

  TimelineResult result;
  result.rank_finish_ms = ready;
  result.rank_wait_ms = wait;
  int critical = 0;
  for (int r = 0; r < ranks; ++r) {
    if (ready[static_cast<std::size_t>(r)] > result.makespan_ms) {
      result.makespan_ms = ready[static_cast<std::size_t>(r)];
      critical = r;
    }
    result.max_wait_ms = std::max(result.max_wait_ms, wait[static_cast<std::size_t>(r)]);
  }
  result.sync_overhead_ms =
      result.makespan_ms - busy[static_cast<std::size_t>(critical)];
  return result;
}

}  // namespace slspvr::core
