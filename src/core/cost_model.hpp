// SP2 cost model: converts measured operation counts and traffic into the
// paper's modelled times.
//
// The paper's equations (1)-(8) express per-PE compositing time as
//   T_comp = T_bound-scan + T_encode * (pixels scanned by the encoder)
//            + T_o * (over operations)
//   T_comm = sum over received messages of (T_s + bytes * T_c)
// The algorithms in core/ count every one of those quantities exactly while
// running; this model maps them to milliseconds with constants calibrated to
// the paper's IBM SP2 (66.7 MHz POWER2 nodes, High Performance Switch).
// Absolute values are a 1999-hardware reconstruction; the *shape* (method
// ordering, crossovers) is what EXPERIMENTS.md validates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/counters.hpp"
#include "mp/trace.hpp"

namespace slspvr::core {

struct ModelTimes {
  double comp_ms = 0.0;
  double comm_ms = 0.0;

  [[nodiscard]] double total_ms() const noexcept { return comp_ms + comm_ms; }
};

struct CostModel {
  double ts_ms = 0.04;              ///< T_s: start-up time per message
  double tc_ms_per_byte = 2.48e-5;  ///< T_c: per-byte transmission (~40 MB/s HPS)
  double to_ms_per_pixel = 3.0e-3;  ///< T_o: one over operation
  double tencode_ms_per_pixel = 5.5e-4;  ///< T_encode: RLE scan per pixel
  double tbound_ms_per_pixel = 1.5e-4;   ///< bounding-rectangle scan per pixel

  /// Constants calibrated against Table 1's BS column (P=2, 384x384).
  [[nodiscard]] static CostModel sp2() { return CostModel{}; }

  /// Modelled times for one rank. Only in-phase traffic counts: messages
  /// recorded with stage >= 1 and a non-negative (user) tag, exactly the
  /// exchanges of the compositing stages.
  [[nodiscard]] ModelTimes rank_times(const Counters& counters,
                                      const mp::TrafficTrace& trace, int rank) const;

  /// The reported per-method figure: times of the critical-path rank (the
  /// rank with the largest comp+comm), mirroring how the paper reports one
  /// T_comp/T_comm/T_total per configuration.
  [[nodiscard]] ModelTimes critical_path(const std::vector<Counters>& per_rank,
                                         const mp::TrafficTrace& trace) const;
};

/// The paper's M_max (Sec. 4): maximum over PEs of total bytes received
/// during the compositing stages (stage >= 1, user tags only).
[[nodiscard]] std::uint64_t max_received_message_bytes(const mp::TrafficTrace& trace);

/// m_i for one rank (received bytes across all compositing stages).
[[nodiscard]] std::uint64_t received_message_bytes(const mp::TrafficTrace& trace, int rank);

}  // namespace slspvr::core
