// PayloadCodec: what bytes ride a compositing exchange.
//
// The paper's methods differ along exactly this axis — BS ships raw region
// pixels, BSBR clips to a bounding rectangle, BSBRC run-length encodes the
// rectangle, BSLC run-length encodes an interleaved progression, BSBRS uses
// scanline spans. Each codec packages one encode/decode/blend + counter
// accounting pair (previously duplicated across the bs*.cpp stage loops) and
// publishes its WireTraits so derive_schedule can bound its messages.
//
// Rect codecs encode a rectangular part, optionally pre-clipped by a
// RegionTracker; scalar codecs encode an interleaved pixel progression.
// Codecs are stateless: codec_for returns shared singletons.
#pragma once

#include <string_view>

#include "core/counters.hpp"
#include "core/plan.hpp"
#include "image/image.hpp"
#include "image/interleave.hpp"
#include "image/pack.hpp"

namespace slspvr::core {

enum class CodecKind {
  kFullPixel,       ///< raw region pixels, no header (BS, dense direct send)
  kBoundingRect,    ///< WireRect + raw clipped pixels (BSBR, sparse DS)
  kRleRect,         ///< WireRect + row-major RLE of the rectangle (BSBRC)
  kSpanRect,        ///< WireRect + scanline spans (BSBRS)
  kInterleavedRle,  ///< RLE of an interleaved progression, scalar (BSLC)
};

class EngineContext;  // core/worker_pool.hpp

/// Destination context for the streaming decode path (decode_*_into): the
/// frame to blend into, the blend order, the counters to charge, and the
/// per-rank engine context supplying configuration (fused on/off) and the
/// worker pool + scratch for band-parallel blending (a 1-wide pool runs
/// inline on the caller).
struct DecodeSink {
  img::Image& image;
  bool incoming_in_front;
  Counters& counters;
  EngineContext& engine;
};

class PayloadCodec {
 public:
  virtual ~PayloadCodec() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Wire-format constants for derive_schedule's symbolic size bounds.
  [[nodiscard]] virtual WireTraits traits() const = 0;

  /// Scalar codecs move interleaved progressions, not rectangles.
  [[nodiscard]] virtual bool scalar() const { return false; }

  /// Whether the codec benefits from a RegionTracker clip. The engine only
  /// clips outgoing parts (and maintains the tracker) when this is true —
  /// dense codecs must receive the whole part or the decoder underruns.
  [[nodiscard]] virtual bool tracks_rect() const { return false; }

  /// Encode `part` (pre-clipped to `clip` for tracking codecs) into `buf`.
  virtual void encode_rect(const img::Image& image, const img::Rect& part,
                           const img::Rect& clip, img::PackBuffer& buf,
                           Counters& counters) const;

  /// Decode one message covering `part` and composite it into `image`.
  /// Returns the rectangle the message actually covered (for trackers).
  virtual img::Rect decode_rect(img::Image& image, const img::Rect& part,
                                img::UnpackBuffer& in, bool incoming_in_front,
                                Counters& counters) const;

  /// Scalar variants over interleaved progressions.
  virtual void encode_range(const img::Image& image, const img::InterleavedRange& part,
                            img::PackBuffer& buf, Counters& counters) const;
  virtual void decode_range(img::Image& image, const img::InterleavedRange& part,
                            img::UnpackBuffer& in, bool incoming_in_front,
                            Counters& counters) const;

  /// Streaming decode: composite one message straight out of the receive
  /// buffer (no unpacked intermediate), band-parallel across the sink's
  /// engine pool — row bands for rect codecs, element chunks for scalar
  /// ones. Byte-identical to decode_rect/decode_range by construction (same
  /// per-pixel arithmetic in the same order within every pixel; bands only
  /// repartition who blends which rows). The default delegates to the
  /// materializing decoders; overrides also fall back to them when the
  /// sink's engine config has fused_decode off, so the legacy path stays
  /// benchmarkable.
  virtual img::Rect decode_rect_into(DecodeSink& sink, const img::Rect& part,
                                     img::UnpackBuffer& in) const;
  virtual void decode_range_into(DecodeSink& sink, const img::InterleavedRange& part,
                                 img::UnpackBuffer& in) const;
};

/// Shared stateless instance of each codec.
[[nodiscard]] const PayloadCodec& codec_for(CodecKind kind);

[[nodiscard]] std::string_view codec_name(CodecKind kind);

}  // namespace slspvr::core
