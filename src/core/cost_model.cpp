#include "core/cost_model.hpp"

#include <algorithm>

namespace slspvr::core {

namespace {
bool in_phase(const mp::MessageRecord& r) { return r.stage >= 1 && r.tag >= 0; }
}  // namespace

ModelTimes CostModel::rank_times(const Counters& counters, const mp::TrafficTrace& trace,
                                 int rank) const {
  ModelTimes t;
  t.comp_ms = to_ms_per_pixel * static_cast<double>(counters.over_ops) +
              tencode_ms_per_pixel * static_cast<double>(counters.encoded_pixels) +
              tbound_ms_per_pixel * static_cast<double>(counters.rect_scanned);
  for (const auto& r : trace.received(rank)) {
    if (!in_phase(r)) continue;
    t.comm_ms += ts_ms + tc_ms_per_byte * static_cast<double>(r.bytes);
  }
  // Every NAK and every retransmit is one extra message on the wire: the
  // transport's healing work is charged as additional T_s + bytes·T_c, so a
  // healed run models strictly slower than its fault-free twin.
  t.comm_ms += ts_ms * static_cast<double>(trace.naks(rank) + trace.retry_messages(rank)) +
               tc_ms_per_byte * static_cast<double>(trace.retry_bytes(rank));
  return t;
}

ModelTimes CostModel::critical_path(const std::vector<Counters>& per_rank,
                                    const mp::TrafficTrace& trace) const {
  ModelTimes best;
  for (int rank = 0; rank < static_cast<int>(per_rank.size()); ++rank) {
    const ModelTimes t = rank_times(per_rank[static_cast<std::size_t>(rank)], trace, rank);
    if (t.total_ms() > best.total_ms()) best = t;
  }
  return best;
}

std::uint64_t received_message_bytes(const mp::TrafficTrace& trace, int rank) {
  std::uint64_t total = 0;
  for (const auto& r : trace.received(rank)) {
    if (in_phase(r)) total += r.bytes;
  }
  return total;
}

std::uint64_t max_received_message_bytes(const mp::TrafficTrace& trace) {
  std::uint64_t best = 0;
  for (int rank = 0; rank < trace.ranks(); ++rank) {
    best = std::max(best, received_message_bytes(trace, rank));
  }
  return best;
}

}  // namespace slspvr::core
