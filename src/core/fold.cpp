#include "core/fold.hpp"

#include <stdexcept>

#include "core/wire.hpp"

namespace slspvr::core {

namespace {
constexpr int kFoldTag = 800;
}

FoldPlan make_fold_plan(int ranks) {
  if (ranks <= 0) throw std::invalid_argument("make_fold_plan: ranks must be positive");
  int q = 1;
  while (q * 2 <= ranks) q *= 2;
  return FoldPlan{ranks, q};
}

SwapOrder make_fold_order(int ranks, int axis, const float view_dir[3]) {
  const FoldPlan plan = make_fold_plan(ranks);
  SwapOrder order;
  order.levels = vol::log2_exact(plan.groups);
  const bool ascending_front = view_dir[axis] >= 0.0f;
  order.lower_front_per_bit.assign(static_cast<std::size_t>(order.levels), ascending_front);
  order.front_to_back.resize(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    order.front_to_back[static_cast<std::size_t>(i)] = ascending_front ? i : ranks - 1 - i;
  }
  return order;
}

Ownership FoldCompositor::composite(mp::Comm& comm, img::Image& image,
                                    const SwapOrder& order, Counters& counters,
                                    EngineContext& engine) const {
  const FoldPlan plan = make_fold_plan(comm.size());
  const int rank = comm.rank();
  const bool ascending_front =
      order.front_to_back.empty() || order.front_to_back.front() == 0;

  comm.set_stage(1);  // fold pre-stage
  if (!plan.is_leader(rank)) {
    // Ship our whole subimage BSBRC-style: rect header + codes + pixels.
    const img::Rect rect =
        img::bounding_rect_of(image, image.bounds(), &counters.rect_scanned);
    img::PackBuffer buf;
    wire::pack_rle_rect(image, rect, buf, counters);
    comm.send(plan.leader_of(rank), kFoldTag, buf.bytes());
    comm.set_stage(0);
    return Ownership::full_rect(img::kEmptyRect);
  }

  const int g = plan.group_of(rank);
  if (plan.group_start(g + 1) - plan.group_start(g) > 1) {
    const int member = rank + 1;  // groups are 1 or 2 consecutive slabs
    const auto bytes = comm.recv(member, kFoldTag);
    img::UnpackBuffer in(bytes);
    // The member is the deeper slab when slab order ascends toward the
    // back, so its pixels are behind exactly when ascending_front.
    (void)wire::unpack_composite_rle_rect(image, in, image.bounds(),
                                          /*incoming_in_front=*/!ascending_front, counters);
  }

  // Leaders run the inner method among themselves.
  std::vector<int> leaders;
  leaders.reserve(static_cast<std::size_t>(plan.groups));
  for (int gg = 0; gg < plan.groups; ++gg) leaders.push_back(plan.group_start(gg));
  mp::Comm sub = comm.subgroup(leaders);

  SwapOrder inner_order;
  inner_order.levels = vol::log2_exact(plan.groups);
  inner_order.lower_front_per_bit.assign(static_cast<std::size_t>(inner_order.levels),
                                         ascending_front);
  inner_order.front_to_back.resize(static_cast<std::size_t>(plan.groups));
  for (int i = 0; i < plan.groups; ++i) {
    inner_order.front_to_back[static_cast<std::size_t>(i)] =
        ascending_front ? i : plan.groups - 1 - i;
  }
  return inner_.composite(sub, image, inner_order, counters, engine);
}


check::CommSchedule FoldCompositor::schedule(int ranks) const {
  const FoldPlan plan = make_fold_plan(ranks);
  return check::fold_schedule(name_, ranks, inner_.schedule(plan.groups));
}

}  // namespace slspvr::core
