// Non-power-of-two binary swap via folding — the paper's first future-work
// item ("the number of processors must be a power of two" is BS's drawback).
//
// Strategy: partition the volume into P depth-ordered slabs along one axis.
// Let Q be the largest power of two <= P. The P slabs are grouped into Q
// consecutive groups (sizes 1 or 2); in each 2-group the non-leader sends
// its subimage — bounding-rectangle clipped and run-length encoded, i.e.
// BSBRC-style — to the group leader, which composites it locally. The Q
// leaders then run any binary-swap-family compositor on a subgroup
// communicator. Depth ordering stays valid because groups are contiguous
// slabs and leader index order equals slab depth order.
#pragma once

#include <string>

#include "core/compositor.hpp"

namespace slspvr::core {

/// Fold plan: how P ranks collapse onto Q = 2^floor(log2 P) leaders.
struct FoldPlan {
  int ranks = 0;
  int groups = 0;  ///< Q

  [[nodiscard]] int group_start(int g) const {
    return static_cast<int>(static_cast<std::int64_t>(ranks) * g / groups);
  }
  [[nodiscard]] int group_of(int rank) const {
    // groups <= 64, linear scan is fine.
    for (int g = 0; g < groups; ++g) {
      if (rank >= group_start(g) && rank < group_start(g + 1)) return g;
    }
    return groups - 1;
  }
  [[nodiscard]] int leader_of(int rank) const { return group_start(group_of(rank)); }
  [[nodiscard]] bool is_leader(int rank) const { return leader_of(rank) == rank; }
};

[[nodiscard]] FoldPlan make_fold_plan(int ranks);

/// SwapOrder for a fold run: `front_to_back` covers all `ranks` slabs along
/// `axis`; `levels`/`lower_front_per_bit` describe the folded leader group.
[[nodiscard]] SwapOrder make_fold_order(int ranks, int axis, const float view_dir[3]);

/// Wraps a binary-swap-family compositor so it accepts any rank count.
/// `order` must come from make_fold_order (slab decomposition).
class FoldCompositor final : public Compositor {
 public:
  explicit FoldCompositor(const Compositor& inner)
      : inner_(inner), name_(std::string("Fold+") + std::string(inner.name())) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

 private:
  const Compositor& inner_;
  std::string name_;
};

}  // namespace slspvr::core
