// BSLC: binary-swap with run-length encoding and static load balancing
// (Sec. 3.3).
//
// The exchange rule is binary swap, but the half a PE gives up is an
// *interleaved* pixel set (Figure 6) rather than a contiguous block, so
// non-blank pixels spread evenly across PEs. The sent half is run-length
// encoded on the blank/non-blank pattern (Figure 5): only the 2-byte codes
// and the non-blank pixel values travel. The cost: the encoder must iterate
// the entire A/2^k sent half each stage (the dominant T_encode term that
// makes BSLC's T_comp the largest of the four methods).
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class BslcCompositor final : public Compositor {
 public:
  /// `interleaved` = false degrades BSLC to contiguous halves (RLE without
  /// the static load balancing) — used by the interleave ablation bench.
  explicit BslcCompositor(bool interleaved = true) : interleaved_(interleaved) {}

  [[nodiscard]] std::string_view name() const override {
    return interleaved_ ? "BSLC" : "BSLC-noninterleaved";
  }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

 private:
  bool interleaved_;
};

}  // namespace slspvr::core
