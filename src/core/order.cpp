#include "core/order.hpp"

#include <functional>
#include <stdexcept>

namespace slspvr::core {

SwapOrder make_swap_order(const vol::KdPartition& partition, const float view_dir[3]) {
  SwapOrder order;
  order.levels = partition.levels;
  order.lower_front_per_bit.resize(static_cast<std::size_t>(partition.levels));
  for (int bit = 0; bit < partition.levels; ++bit) {
    order.lower_front_per_bit[static_cast<std::size_t>(bit)] =
        partition.lower_child_in_front(bit, view_dir);
  }

  // Near-first BSP traversal: at each level visit the half nearer the viewer
  // first, yielding ranks front-to-back.
  order.front_to_back.reserve(static_cast<std::size_t>(1) << partition.levels);
  const std::function<void(int, int)> visit = [&](int level, int prefix) {
    if (level == partition.levels) {
      order.front_to_back.push_back(prefix);
      return;
    }
    const int axis = partition.level_axis[static_cast<std::size_t>(level)];
    const bool lower_first = view_dir[axis] >= 0.0f;
    visit(level + 1, prefix * 2 + (lower_first ? 0 : 1));
    visit(level + 1, prefix * 2 + (lower_first ? 1 : 0));
  };
  visit(0, 0);
  return order;
}

SwapOrder make_uniform_order(int levels, bool lower_front) {
  SwapOrder order;
  order.levels = levels;
  order.lower_front_per_bit.assign(static_cast<std::size_t>(levels), lower_front);
  const int ranks = 1 << levels;
  order.front_to_back.resize(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    order.front_to_back[static_cast<std::size_t>(i)] = lower_front ? i : ranks - 1 - i;
  }
  return order;
}

SwapOrder make_slab_order(int ranks, int axis, const float view_dir[3]) {
  if (!vol::is_power_of_two(ranks)) {
    throw std::invalid_argument("make_slab_order: ranks must be a power of two");
  }
  SwapOrder order;
  order.levels = vol::log2_exact(ranks);
  const bool ascending_front = view_dir[axis] >= 0.0f;
  order.lower_front_per_bit.assign(static_cast<std::size_t>(order.levels),
                                   ascending_front);
  order.front_to_back.resize(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    order.front_to_back[static_cast<std::size_t>(i)] = ascending_front ? i : ranks - 1 - i;
  }
  return order;
}

}  // namespace slspvr::core
