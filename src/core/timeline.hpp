// Staged timeline model: a discrete simulation of the compositing phase
// that captures SYNCHRONIZATION WAIT, which the additive per-rank model
// (CostModel::rank_times) cannot.
//
// The paper's measured "communication time" on the SP2 includes the time a
// PE spends blocked waiting for its partner — on unbalanced workloads that
// dwarfs the pure T_s + bytes*T_c transfer cost. This model replays the
// per-stage structure: at stage k a rank first performs its pre-exchange
// work (encode/scan, from the stage counter deltas), its messages then
// arrive no earlier than each sender's own send point plus the wire time,
// and the post-exchange work (over ops) runs after the last arrival:
//
//   send_point[r][k]  = ready[r][k-1] + pre[r][k]
//   arrival[r][k]     = max over received msgs (send_point[sender][k] + Ts + Tc*bytes)
//   ready[r][k]       = max(send_point[r][k], arrival[r][k]) + post[r][k]
//
// Makespan = max_r ready[r][K]. Requires compositors to call
// Counters::mark_stage() (all the methods in core/ do).
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "core/counters.hpp"
#include "mp/trace.hpp"

namespace slspvr::core {

struct TimelineResult {
  double makespan_ms = 0.0;               ///< finish time of the last rank
  std::vector<double> rank_finish_ms;     ///< per-rank finish times
  std::vector<double> rank_wait_ms;       ///< per-rank total blocked time
  double max_wait_ms = 0.0;               ///< worst per-rank wait

  /// Makespan minus the critical rank's pure work+wire time: the cost of
  /// synchronization alone.
  double sync_overhead_ms = 0.0;
};

/// Simulate the staged execution. `per_rank` must carry stage marks; the
/// trace supplies per-stage received messages (user tags, stage >= 1).
[[nodiscard]] TimelineResult simulate_timeline(const std::vector<Counters>& per_rank,
                                               const mp::TrafficTrace& trace,
                                               const CostModel& model);

}  // namespace slspvr::core
