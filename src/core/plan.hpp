// ExchangePlan: the pure communication structure of a compositing method.
//
// Every method in this system is "a way to chop the screen up and move the
// pieces": per stage, each rank splits its current region into `radix`
// parts, keeps one, ships the others to the stage's partner group, and
// receives its kept part's missing contributions. The plan captures exactly
// that — partner groups, part assignments, tags — with no pixels, codecs or
// counters. One plan object serves two consumers that previously each had a
// hand-written copy of this structure:
//
//  * plan_composite (core/engine.hpp) executes the plan with a
//    PayloadCodec and a RegionTracker;
//  * derive_schedule lowers the same object to a check::CommSchedule, so
//    slspvr-check verifies the very program the engine runs — the static
//    model can no longer drift from the code path.
//
// Plans exist for binary swap (radix-2 pairing, power-of-two P), the k-ary
// group exchange (mixed-radix digit pairing — handles any P natively, the
// Fold wrapper's job done in-band), direct send, the binary tree reduction
// and the ring pipeline.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "check/schedule.hpp"
#include "image/rect.hpp"

namespace slspvr::core {

/// How a stage's parts partition the current region.
enum class SplitRule {
  kBalanced,    ///< rect: ceil slices of the longer side (== centerline at
                ///< radix 2); scalar: interleaved even/odd-style sections
  kContiguous,  ///< scalar only: contiguous index blocks (BSLC ablation)
  kBand,        ///< horizontal bands of the full frame (direct send)
  kGather,      ///< no split: part 0 is the sender's whole current region
  kRing,        ///< pipeline: bands circulate, region never splits
};

/// How the engine decides which incoming contribution is in front.
enum class FrontRule {
  kSwapBit,     ///< stage s pairs on rank bit s: order.incoming_in_front
  kDepthOrder,  ///< composite all contributions in order.front_to_back
};

/// One outgoing message: ship `part` to `peer`.
struct PartSend {
  int peer = -1;
  int part = 0;
};

/// One rank's program for one stage. A default-constructed RankStage
/// (radix 1, no sends/recvs) is a retired rank: it skips the stage.
struct RankStage {
  int radix = 1;  ///< how many parts the current region splits into
  int keep = 0;   ///< index of the part this rank keeps; -1 = retire (tree)
  std::vector<PartSend> sends;  ///< emitted in order, before any receive
  std::vector<int> recv_peers;  ///< receives, in order, after the sends
};

/// A method's complete exchange structure for one rank count.
struct ExchangePlan {
  std::string family;  ///< "binary-swap", "kary", "direct-send", ...
  int ranks = 0;
  bool pairwise = false;  ///< per-stage sends form symmetric pairs
  SplitRule split = SplitRule::kBalanced;
  FrontRule front = FrontRule::kSwapBit;
  std::vector<std::vector<RankStage>> per_rank;  ///< [rank][stage]

  [[nodiscard]] int stages() const noexcept {
    return per_rank.empty() ? 0 : static_cast<int>(per_rank.front().size());
  }
};

/// Classic binary swap: stage s pairs rank r with r XOR 2^s; the lower rank
/// keeps part 0. Throws std::invalid_argument unless `ranks` is a power of
/// two. `split` selects balanced (default) or contiguous scalar halves.
[[nodiscard]] ExchangePlan binary_swap_plan(int ranks,
                                            SplitRule split = SplitRule::kBalanced);

/// Ascending prime factorisation of `ranks` — the stage radices of the
/// k-ary plan (e.g. 12 -> {2, 2, 3}; a prime P -> {P}; 1 -> {}).
[[nodiscard]] std::vector<int> kary_radices(int ranks);

/// k-ary group exchange: mixed-radix generalisation of binary swap that
/// handles ANY rank count natively. Write r in the mixed-radix system of
/// kary_radices(P); at stage s the ranks sharing every digit but digit s
/// form a group of k_s members that split the region k_s ways — the member
/// with digit j keeps part j and ships every other part to its owner. At a
/// power of two this degenerates to binary swap's pairing. Region parts are
/// contiguous, so depth stays correct for monotone front-to-back orders
/// (ascending or descending rank — what make_fold_order produces).
[[nodiscard]] ExchangePlan kary_plan(int ranks, SplitRule split = SplitRule::kBalanced);

/// Direct send: one stage, the frame statically split into `ranks`
/// horizontal bands; every rank ships each other band to its owner and
/// receives P-1 contributions for its own.
[[nodiscard]] ExchangePlan direct_send_plan(int ranks);

/// Binary tree reduction: at stage s the rank whose low bits equal 2^s
/// ships its whole accumulated region to partner r XOR 2^s and retires
/// (keep = -1). Power-of-two ranks only.
[[nodiscard]] ExchangePlan binary_tree_plan(int ranks);

/// Ring pipeline over the identity depth order: P-1 steps, step s sends
/// band ((q - s) mod P) to the successor under tag s+1. The engine does not
/// execute this plan (the pipeline's two-segment payload is not a codec);
/// it exists so the pipeline's schedule is derived, not hand-written.
[[nodiscard]] ExchangePlan ring_plan(int ranks);

/// Wire-format traits of a payload codec: everything derive_schedule needs
/// to turn a plan into symbolic per-message size bounds.
struct WireTraits {
  check::PayloadClass payload = check::PayloadClass::kFullRegion;
  std::int64_t fixed_bytes = 0;      ///< headers independent of region size
  std::int64_t per_pixel_bytes = 16; ///< worst-case wire bytes per pixel
  std::int64_t per_row_bytes = 0;    ///< per-row overhead (span tables)
  bool scalar = false;               ///< regions are pixel counts, not rects
};

/// Lower a plan to the static schedule model: the exact per-rank event
/// sequence the engine emits (per stage: sends in plan order, then
/// receives), with region bounds tracked through the splits. Power-of-two
/// radix-2 plans emit the legacy `halvings` region encoding, so derived
/// schedules for the paper methods are byte-identical to the hand-built
/// ones they replace (Eq. (9) forms included); mixed-radix plans use
/// RegionSpec::radices.
[[nodiscard]] check::CommSchedule derive_schedule(const ExchangePlan& plan,
                                                  const WireTraits& traits,
                                                  std::string_view method);

// ---- mid-frame repair ------------------------------------------------------

/// Slice the longer side of `region` into `radix` ceil-boundary parts — the
/// concrete geometry behind SplitRule::kBalanced (== split_centerline at
/// radix 2). Exposed because the engine (executing plans) and the repair
/// analysis (replaying them) must agree on it byte-for-byte.
[[nodiscard]] std::vector<img::Rect> split_rect_parts(const img::Rect& region, int radix);

/// The protocol state after `completed_stages` stages of a rect plan:
/// `region[r]` is the rectangle rank r owns, and `contributors[r]` (sorted)
/// lists the ranks whose subimages are already composited into r's partial
/// over that rectangle. This is what a dead rank takes with it: losing rank
/// d at epoch e loses exactly the composite of contributors[d]'s subimages
/// restricted to region[d] — everything else still lives on some survivor.
struct EpochState {
  std::vector<img::Rect> region;
  std::vector<std::vector<int>> contributors;
};

/// Replay a kBalanced rect plan for `completed_stages` stages without
/// touching pixels. Throws std::invalid_argument for scalar/band/gather/ring
/// plans (their state is not a per-rank rectangle) or an out-of-range stage
/// count.
[[nodiscard]] EpochState plan_epoch_state(const ExchangePlan& plan, int completed_stages,
                                          const img::Rect& frame);

/// Rebuild the remaining exchange over the survivor set: the repair plan is
/// a k-ary group exchange over |survivors| ranks (any count — no folding
/// needed) run on sparse full-frame inputs assembled by the resume path
/// from epoch-`completed_stages` partials. `survivors` must be a sorted,
/// duplicate-free, non-empty subset of the original ranks. Family "repair".
[[nodiscard]] ExchangePlan repair_plan(const ExchangePlan& plan, int completed_stages,
                                       const std::vector<int>& survivors);

}  // namespace slspvr::core
