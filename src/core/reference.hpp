// Sequential reference compositor: the ground truth every parallel method
// must match bit-for-bit (over is evaluated in the same order and with the
// same float arithmetic, so results are exactly equal, not approximately).
#pragma once

#include <span>

#include "image/image.hpp"

namespace slspvr::core {

/// Composite `subimages` in the given front-to-back rank order.
[[nodiscard]] img::Image composite_reference(std::span<const img::Image> subimages,
                                             std::span<const int> front_to_back);

}  // namespace slspvr::core
