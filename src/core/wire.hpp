// Wire helpers shared by the binary-swap family: packing raw rectangles,
// run-length encoded rectangles, and run-length encoded interleaved ranges
// into send buffers, and compositing them back out of receive buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/counters.hpp"
#include "image/image.hpp"
#include "image/interleave.hpp"
#include "image/pack.hpp"
#include "image/rle.hpp"
#include "image/spans.hpp"

namespace slspvr::core::wire {

/// Append the raw pixels of `rect` (row-major) to `buf`.
void pack_rect_pixels(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf);

/// Composite raw rect pixels from `buf` into `image` over `rect`.
/// Every pixel of the rectangle costs one over op (the BSBR disadvantage:
/// blank pixels inside the rectangle are shipped and composited too).
void unpack_composite_rect(img::Image& image, const img::Rect& rect, img::UnpackBuffer& buf,
                           bool incoming_in_front, Counters& counters);

/// Run-length encode the pixels of `rect` in row-major order.
/// Counts rect.area() encoded pixels and the emitted codes.
[[nodiscard]] img::Rle encode_rect(const img::Image& image, const img::Rect& rect,
                                   Counters& counters);

/// Run-length encode the pixels of an interleaved progression.
[[nodiscard]] img::Rle encode_strided(const img::Image& image,
                                      const img::InterleavedRange& range,
                                      Counters& counters);

/// Same, over a raw pixel array instead of a frame — the BSLC SoA engine
/// keeps its progression compacted in scratch between stages and encodes
/// parts of it in element space. Identical sequence values mean identical
/// codes, payload and counters, so the wire bytes match the frame-based
/// encode exactly.
[[nodiscard]] img::Rle encode_strided_base(const img::Pixel* base,
                                           const img::InterleavedRange& range,
                                           Counters& counters);

/// Append an Rle to `buf`: codes then pixels, no header — the decoder knows
/// the expected sequence length, so wire bytes are exactly
/// 2*#codes + 16*#pixels (the R_code / A_opaque terms of Eqs. 6 and 8).
void pack_rle(const img::Rle& rle, img::PackBuffer& buf);

/// Parse an Rle representing `expected_length` pixels from `buf`.
/// Throws img::DecodeError when the codes overshoot the expected sequence
/// length or the buffer is truncated — never reads out of bounds.
[[nodiscard]] img::Rle parse_rle(img::UnpackBuffer& buf, std::int64_t expected_length);

/// Parse an 8-byte wire rectangle and validate it against `bounds`: the
/// rectangle must be empty or well-formed and fully inside `bounds`.
/// Throws img::DecodeError otherwise (a corrupted or hostile header must
/// not drive out-of-bounds pixel writes in the compositing loops).
[[nodiscard]] img::Rect parse_rect(img::UnpackBuffer& buf, const img::Rect& bounds);

/// Composite an Rle whose sequence is the row-major scan of `rect`.
/// Only non-blank pixels are composited (one over op each).
void composite_rle_rect(img::Image& image, const img::Rect& rect, const img::Rle& rle,
                        bool incoming_in_front, Counters& counters);

/// Composite an Rle whose sequence is the interleaved progression `range`.
void composite_rle_strided(img::Image& image, const img::InterleavedRange& range,
                           const img::Rle& rle, bool incoming_in_front, Counters& counters);

// ---- header + payload sequences ------------------------------------------
// The WireRect-then-payload pack/parse sequences BSBR/BSBRC/BSBRS/Fold used
// to each spell out inline. One shared copy keeps the header handling (and
// its bounds checks) identical across every method that ships a rectangle.

/// BSBR wire format: 8 B WireRect, then the rectangle's raw pixels (nothing
/// when the rectangle is empty). Adds rect.area() to pixels_sent.
void pack_raw_rect(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf,
                   Counters& counters);

/// Parse a pack_raw_rect message and composite it into `image`. The header
/// rectangle is validated against `bounds` before any pixel is touched.
/// Returns the received rectangle (empty when the sender had nothing).
[[nodiscard]] img::Rect unpack_composite_raw_rect(img::Image& image, img::UnpackBuffer& buf,
                                                  const img::Rect& bounds,
                                                  bool incoming_in_front, Counters& counters);

/// BSBRC wire format: 8 B WireRect, then the rectangle's row-major RLE
/// (codes + non-blank pixels). Adds the non-blank count to pixels_sent.
void pack_rle_rect(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf,
                   Counters& counters);

/// Parse a pack_rle_rect message and composite its non-blank pixels.
[[nodiscard]] img::Rect unpack_composite_rle_rect(img::Image& image, img::UnpackBuffer& buf,
                                                  const img::Rect& bounds,
                                                  bool incoming_in_front, Counters& counters);

/// BSBRS wire format: 8 B WireRect, then the rectangle's scanline spans.
void pack_span_rect(const img::Image& image, const img::Rect& rect, img::PackBuffer& buf,
                    Counters& counters);

/// Parse a pack_span_rect message and composite its span pixels.
[[nodiscard]] img::Rect unpack_composite_span_rect(img::Image& image, img::UnpackBuffer& buf,
                                                   const img::Rect& bounds,
                                                   bool incoming_in_front, Counters& counters);

// ---- streaming views (fused decode→composite path) -----------------------
// The fused decoders blend straight out of the receive buffer, so instead of
// materializing img::Rle / img::SpanImage (allocating and copying codes and
// pixels) they take zero-copy *views* of the payload. Validation is the same
// as the materializing parsers — truncation, overshooting code totals and
// out-of-rect spans all throw img::DecodeError before any pixel is touched.
// Pixel payloads land 2-mod-4 whenever an odd number of 2-byte codes
// precedes them; a misaligned section is copied once into the caller's
// bounce vector (still cheaper than the full materializing parse).

/// Zero-copy view of a pack_rle message: codes + payload, still in `buf`.
struct RleView {
  const std::uint16_t* codes = nullptr;
  std::size_t ncodes = 0;
  const img::Pixel* pixels = nullptr;
  std::int64_t non_blank = 0;  ///< total payload pixels (sum of non-blank runs)
};

/// Parse an RLE view for `expected_length` sequence elements. Consumes the
/// message bytes from `buf`; `pixel_bounce`/`code_bounce` back misaligned
/// sections and must outlive every use of the view.
[[nodiscard]] RleView parse_rle_view(img::UnpackBuffer& buf, std::int64_t expected_length,
                                     std::vector<img::Pixel>& pixel_bounce,
                                     std::vector<std::uint16_t>& code_bounce);

/// Zero-copy view of a pack_spans message for a known rectangle.
struct SpanView {
  const std::uint16_t* row_counts = nullptr;  ///< rect.height() entries
  const img::Span* spans = nullptr;
  std::size_t nspans = 0;
  const img::Pixel* pixels = nullptr;
  std::int64_t non_blank = 0;
};

/// Parse a span view for `rect` (same validation as parse_spans).
[[nodiscard]] SpanView parse_spans_view(img::UnpackBuffer& buf, const img::Rect& rect,
                                        std::vector<img::Pixel>& pixel_bounce);

// ---- scanline-span codec (future-work encoding; see image/spans.hpp) -----

/// Span-encode the pixels of `rect`; counts rect.area() encoded pixels and
/// one "code" per row plus two per span (matching its 2-byte units so the
/// cost model's R_code term stays comparable with the RLE methods).
[[nodiscard]] img::SpanImage encode_spans(const img::Image& image, const img::Rect& rect,
                                          Counters& counters);

/// Append a SpanImage (rows, spans, pixels — rect is shipped separately).
void pack_spans(const img::SpanImage& spans, img::PackBuffer& buf);

/// Parse a SpanImage for the known `rect` from `buf`.
[[nodiscard]] img::SpanImage parse_spans(img::UnpackBuffer& buf, const img::Rect& rect);

/// Composite the span pixels into `image` (over ops = non-blank count).
void composite_spans(img::Image& image, const img::SpanImage& spans,
                     bool incoming_in_front, Counters& counters);

}  // namespace slspvr::core::wire
