#include "core/binary_swap.hpp"

#include "core/engine.hpp"

namespace slspvr::core {

Ownership BinarySwapCompositor::composite(mp::Comm& comm, img::Image& image,
                                          const SwapOrder& order,
                                          Counters& counters,
                                    EngineContext& engine) const {
  return plan_composite(binary_swap_plan(comm.size()), codec_for(CodecKind::kFullPixel),
                        TrackerKind::kNone, comm, image, order, counters, engine);
}


check::CommSchedule BinarySwapCompositor::schedule(int ranks) const {
  return derive_schedule(binary_swap_plan(ranks),
                         codec_for(CodecKind::kFullPixel).traits(), name());
}

}  // namespace slspvr::core
