#include "core/binary_swap.hpp"

#include "core/wire.hpp"

namespace slspvr::core {

Ownership BinarySwapCompositor::composite(mp::Comm& comm, img::Image& image,
                                          const SwapOrder& order,
                                          Counters& counters) const {
  img::Rect region = image.bounds();
  for (int k = 1; k <= order.levels; ++k) {
    comm.set_stage(k);
    const int bit = k - 1;
    const int partner = comm.rank() ^ (1 << bit);
    const bool keep_low = ((comm.rank() >> bit) & 1) == 0;

    const auto halves = img::split_centerline(region);
    const img::Rect keep = keep_low ? halves[0] : halves[1];
    const img::Rect give = keep_low ? halves[1] : halves[0];

    img::PackBuffer buf;
    buf.reserve(static_cast<std::size_t>(give.area()) * sizeof(img::Pixel));
    wire::pack_rect_pixels(image, give, buf);
    counters.pixels_sent += give.area();

    const auto received = comm.sendrecv(partner, k, buf.bytes());
    img::UnpackBuffer in(received);
    wire::unpack_composite_rect(image, keep, in, order.incoming_in_front(comm.rank(), bit),
                                counters);
    region = keep;
    counters.mark_stage();
  }
  comm.set_stage(0);
  return Ownership::full_rect(region);
}


check::CommSchedule BinarySwapCompositor::schedule(int ranks) const {
  // Raw full-region halves: 16 B/pixel, no headers.
  return check::binary_swap_family_schedule(name(), ranks, check::PayloadClass::kFullRegion,
                                            16, 0, false);
}

}  // namespace slspvr::core
