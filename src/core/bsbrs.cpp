#include "core/bsbrs.hpp"

#include "core/engine.hpp"

namespace slspvr::core {

Ownership BsbrsCompositor::composite(mp::Comm& comm, img::Image& image,
                                     const SwapOrder& order, Counters& counters,
                                    EngineContext& engine) const {
  return plan_composite(binary_swap_plan(comm.size()), codec_for(CodecKind::kSpanRect),
                        TrackerKind::kUnion, comm, image, order, counters, engine);
}


check::CommSchedule BsbrsCompositor::schedule(int ranks) const {
  return derive_schedule(binary_swap_plan(ranks), codec_for(CodecKind::kSpanRect).traits(),
                         name());
}

}  // namespace slspvr::core
