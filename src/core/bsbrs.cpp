#include "core/bsbrs.hpp"

#include "core/wire.hpp"

namespace slspvr::core {

Ownership BsbrsCompositor::composite(mp::Comm& comm, img::Image& image,
                                     const SwapOrder& order, Counters& counters) const {
  img::Rect region = image.bounds();
  img::Rect local_rect = img::bounding_rect_of(image, region, &counters.rect_scanned);

  for (int k = 1; k <= order.levels; ++k) {
    comm.set_stage(k);
    const int bit = k - 1;
    const int partner = comm.rank() ^ (1 << bit);
    const bool keep_low = ((comm.rank() >> bit) & 1) == 0;

    const auto halves = img::split_centerline(region);
    const img::Rect keep = keep_low ? halves[0] : halves[1];
    const img::Rect give = keep_low ? halves[1] : halves[0];
    const img::Rect send_rect = img::intersect(local_rect, give);

    img::PackBuffer buf;
    buf.put(img::to_wire(send_rect));
    if (!send_rect.empty()) {
      const img::SpanImage spans = wire::encode_spans(image, send_rect, counters);
      counters.pixels_sent += spans.non_blank_count();
      wire::pack_spans(spans, buf);
    }

    const auto received = comm.sendrecv(partner, k, buf.bytes());

    img::UnpackBuffer in(received);
    const img::Rect recv_rect = wire::parse_rect(in, image.bounds());
    if (!recv_rect.empty()) {
      const img::SpanImage incoming = wire::parse_spans(in, recv_rect);
      wire::composite_spans(image, incoming, order.incoming_in_front(comm.rank(), bit),
                            counters);
    }

    local_rect = img::bounding_union(img::intersect(local_rect, keep), recv_rect);
    region = keep;
    counters.mark_stage();
  }
  comm.set_stage(0);
  return Ownership::full_rect(region);
}


check::CommSchedule BsbrsCompositor::schedule(int ranks) const {
  // WireRect (8 B) + (4 + 16) B per single-pixel span + a 2 B span count
  // per rectangle row, paid even for rows with no spans.
  return check::binary_swap_family_schedule(name(), ranks, check::PayloadClass::kNonBlank,
                                            20, 12, false, 2);
}

}  // namespace slspvr::core
