// BSBRS: binary-swap with bounding rectangle and scanline-SPAN encoding —
// this repository's contribution to the paper's future-work direction
// "study more efficient encoding schemes".
//
// Identical exchange structure to BSBRC (Sec. 3.4), but the sending
// rectangle's non-blank pixels are described by per-row span lists
// (image/spans.hpp) instead of background/foreground run-length codes.
// Trade-off measured by bench/ablation_encoding: spans pay 2 bytes per row
// even when blank, but cost 4 bytes per *contiguous non-blank run* versus
// RLE's 2 bytes per run *boundary* (blank runs included), and the receiver
// composites with pure pointer arithmetic.
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class BsbrsCompositor final : public Compositor {
 public:
  [[nodiscard]] std::string_view name() const override { return "BSBRS"; }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

  [[nodiscard]] std::optional<ExchangePlan> resume_plan(int ranks) const override {
    return binary_swap_plan(ranks);
  }
};

}  // namespace slspvr::core
