#include "core/parallel_pipeline.hpp"

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "core/direct_send.hpp"
#include "core/plan.hpp"
#include "image/pack.hpp"

namespace slspvr::core {

namespace {

/// Direct pixel forwarding record: explicit coordinates + value (20 bytes),
/// the scheme Sec. 2 credits to Lee / Cox & Hanrahan.
struct PixelRecord {
  std::int16_t x = 0;
  std::int16_t y = 0;
  img::Pixel value;
};
static_assert(sizeof(PixelRecord) == 20, "explicit-xy record is 20 bytes on the wire");

void scan_to_records(const img::Image& buffer, const img::Rect& band,
                     std::vector<PixelRecord>& out) {
  for (int y = band.y0; y < band.y1; ++y) {
    for (int x = band.x0; x < band.x1; ++x) {
      const img::Pixel& p = buffer.at(x, y);
      if (!img::is_blank(p)) {
        out.push_back(PixelRecord{static_cast<std::int16_t>(x), static_cast<std::int16_t>(y), p});
      }
    }
  }
}

void place_records(img::Image& buffer, std::span<const PixelRecord> records) {
  for (const PixelRecord& r : records) buffer.at(r.x, r.y) = r.value;
}

}  // namespace

Ownership ParallelPipelineCompositor::composite(mp::Comm& comm, img::Image& image,
                                                const SwapOrder& order, Counters& counters,
                                                EngineContext& /*engine*/) const {
  const int ranks = comm.size();
  const int rank = comm.rank();
  if (ranks == 1) return Ownership::full_rect(image.bounds());

  // Logical ring position = depth position (0 = front-most).
  const int q = order.depth_position(rank);
  const int succ = order.front_to_back[static_cast<std::size_t>((q + 1) % ranks)];
  const int pred = order.front_to_back[static_cast<std::size_t>((q - 1 + ranks) % ranks)];

  // Two partial composites for the band currently passing through us:
  // segment A = logical procs [band .. P-1], segment B = [0 .. band-1].
  img::Image partial_a(image.width(), image.height());
  img::Image partial_b(image.width(), image.height());

  img::Image result(image.width(), image.height());
  img::Rect my_band;

  for (int s = 0; s < ranks; ++s) {
    const int band_index = ((q - s) % ranks + ranks) % ranks;
    const img::Rect band = DirectSendCompositor::band_of(image.bounds(), band_index, ranks);

    if (s == 0) {
      partial_a.clear();
      partial_b.clear();
      // Seed segment A with our own contribution (q == band_index here),
      // a straight row copy.
      for (int y = band.y0; y < band.y1; ++y) {
        std::memcpy(&partial_a.at(band.x0, y), &image.at(band.x0, y),
                    static_cast<std::size_t>(band.width()) * sizeof(img::Pixel));
      }
    } else {
      comm.set_stage(s);
      const auto bytes = comm.recv(pred, s);
      img::UnpackBuffer in(bytes);
      const auto count_a = in.get<std::int32_t>();
      const auto count_b = in.get<std::int32_t>();
      const auto recs_a = in.get_vector<PixelRecord>(static_cast<std::size_t>(count_a));
      const auto recs_b = in.get_vector<PixelRecord>(static_cast<std::size_t>(count_b));
      counters.pixels_received += count_a + count_b;
      partial_a.clear();
      partial_b.clear();
      place_records(partial_a, recs_a);
      place_records(partial_b, recs_b);

      // Composite our own non-blank pixels of this band. We are deeper than
      // everything already in our segment's partial, so partial stays front.
      img::Image& segment = q >= band_index ? partial_a : partial_b;
      for (int y = band.y0; y < band.y1; ++y) {
        for (int x = band.x0; x < band.x1; ++x) {
          const img::Pixel& own = image.at(x, y);
          if (img::is_blank(own)) continue;
          img::Pixel& acc = segment.at(x, y);
          acc = img::over(acc, own);
          ++counters.over_ops;
        }
      }
    }

    if (s < ranks - 1) {
      // Forward the band's partials to the ring successor.
      std::vector<PixelRecord> recs_a, recs_b;
      scan_to_records(partial_a, band, recs_a);
      scan_to_records(partial_b, band, recs_b);
      img::PackBuffer buf;
      buf.put(static_cast<std::int32_t>(recs_a.size()));
      buf.put(static_cast<std::int32_t>(recs_b.size()));
      buf.put_span(std::span<const PixelRecord>(recs_a));
      buf.put_span(std::span<const PixelRecord>(recs_b));
      counters.pixels_sent += static_cast<std::int64_t>(recs_a.size() + recs_b.size());
      comm.set_stage(s + 1);
      comm.send(succ, s + 1, buf.bytes());
    } else {
      // Band retired at its owner: final = B over A (B is the front segment).
      my_band = band;
      for (int y = band.y0; y < band.y1; ++y) {
        for (int x = band.x0; x < band.x1; ++x) {
          const img::Pixel& front = partial_b.at(x, y);
          const img::Pixel& back = partial_a.at(x, y);
          if (img::is_blank(front) && img::is_blank(back)) continue;
          result.at(x, y) = img::over(front, back);
          ++counters.over_ops;
        }
      }
    }
    // Stage alignment for the timeline model: messages of ring step s carry
    // stage tag s, and the work of step s (receive + composite) belongs to
    // that same stage; step 0 only seeds local buffers (no counted work).
    if (s >= 1) counters.mark_stage();
  }
  comm.set_stage(0);

  image = std::move(result);
  return Ownership::full_rect(my_band);
}


check::CommSchedule ParallelPipelineCompositor::schedule(int ranks) const {
  // Two partial segments of one band, as 20-byte explicit-xy records behind
  // the two 4-byte counts. The composite above keeps its two-segment ring
  // loop, but its exchange structure is the shared ring plan.
  return derive_schedule(ring_plan(ranks),
                         WireTraits{check::PayloadClass::kNonBlank, 8, 40, 0, false}, name());
}

}  // namespace slspvr::core
