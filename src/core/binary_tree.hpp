// Binary-tree compositing with value-based run-length compression
// (Ahrens & Painter 1998, described in Sec. 2).
//
// Tree reduction: at stage k the rank whose low k bits are 2^(k-1) sends its
// whole current image — value-RLE compressed — to the rank whose low k bits
// are zero, then retires. Compositing happens directly in the compressed
// domain (run-vs-run, the O(1)-best-case merge the paper describes). After
// log P stages rank 0 holds the full image. Parallelism halves every stage,
// which is exactly why Ma et al. proposed binary swap; this serves as a
// related-work baseline and as the home of the value-RLE ablation.
#pragma once

#include "core/compositor.hpp"

namespace slspvr::core {

class BinaryTreeCompositor final : public Compositor {
 public:
  [[nodiscard]] std::string_view name() const override { return "BinaryTree-AP"; }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;
};

}  // namespace slspvr::core
