// PlanCompositor: a Compositor assembled from a (plan family, codec,
// tracker) triple instead of a hand-written stage loop.
//
// This is the payoff of the plan × codec decomposition: any exchange family
// can carry any compatible payload, so method combinations the paper never
// named — a k-ary exchange with BSBRC's RLE-in-rect payload, a binary tree
// shipping bounding rectangles, direct send with RLE — are one constructor
// call (see docs/architecture.md for the worked example).
#pragma once

#include <string>

#include "core/codec.hpp"
#include "core/compositor.hpp"
#include "core/region_tracker.hpp"

namespace slspvr::core {

/// Which ExchangePlan builder backs the method.
enum class PlanFamily {
  kBinarySwap,  ///< radix-2 pairing, power-of-two P (binary_swap_plan)
  kKary,        ///< mixed-radix group exchange, any P (kary_plan)
  kDirectSend,  ///< one-stage banded all-to-all (direct_send_plan)
  kBinaryTree,  ///< reduction to rank 0 (binary_tree_plan)
};

class PlanCompositor final : public Compositor {
 public:
  PlanCompositor(std::string name, PlanFamily family, CodecKind codec,
                 TrackerKind tracker)
      : name_(std::move(name)), family_(family), codec_(codec), tracker_(tracker) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  using Compositor::composite;
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters, EngineContext& engine) const override;

  [[nodiscard]] check::CommSchedule schedule(int ranks) const override;

  [[nodiscard]] std::optional<ExchangePlan> resume_plan(int ranks) const override;

 private:
  [[nodiscard]] ExchangePlan plan_for(int ranks) const;

  std::string name_;
  PlanFamily family_;
  CodecKind codec_;
  TrackerKind tracker_;
};

}  // namespace slspvr::core
