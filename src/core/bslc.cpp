#include "core/bslc.hpp"

#include "core/wire.hpp"

namespace slspvr::core {

Ownership BslcCompositor::composite(mp::Comm& comm, img::Image& image,
                                    const SwapOrder& order, Counters& counters) const {
  img::InterleavedRange range = img::InterleavedRange::whole(image.pixel_count());

  for (int k = 1; k <= order.levels; ++k) {
    comm.set_stage(k);
    const int bit = k - 1;
    const int partner = comm.rank() ^ (1 << bit);
    const bool keep_even = ((comm.rank() >> bit) & 1) == 0;

    img::InterleavedRange keep, give;
    if (interleaved_) {
      const auto halves = range.split();  // even / odd interleaved sections
      keep = keep_even ? halves[0] : halves[1];
      give = keep_even ? halves[1] : halves[0];
    } else {
      // Ablation mode: contiguous halves of the progression, no balancing.
      const std::int64_t half = (range.count + 1) / 2;
      const img::InterleavedRange lowr{range.offset, range.stride, half};
      const img::InterleavedRange highr{range.offset + half * range.stride, range.stride,
                                        range.count - half};
      keep = keep_even ? lowr : highr;
      give = keep_even ? highr : lowr;
    }

    // Run-length encode the entire sent half (T_encode * A/2^k of Eq. 5).
    const img::Rle rle = wire::encode_strided(image, give, counters);
    counters.pixels_sent += rle.non_blank_count();

    img::PackBuffer buf;
    buf.reserve(static_cast<std::size_t>(rle.wire_bytes()));
    wire::pack_rle(rle, buf);

    const auto received = comm.sendrecv(partner, k, buf.bytes());
    img::UnpackBuffer in(received);
    const img::Rle incoming = wire::parse_rle(in, keep.count);
    wire::composite_rle_strided(image, keep, incoming,
                                order.incoming_in_front(comm.rank(), bit), counters);
    range = keep;
    counters.mark_stage();
  }
  comm.set_stage(0);
  return Ownership::interleaved(range);
}


check::CommSchedule BslcCompositor::schedule(int ranks) const {
  // RLE over the rank's pixel progression: worst case one 2 B code per
  // 16 B pixel, behind the 4 B code-count header. The region is a scalar
  // pixel count (interleaved assignment), not a rectangle.
  return check::binary_swap_family_schedule(name(), ranks, check::PayloadClass::kNonBlank,
                                            18, 4, true);
}

}  // namespace slspvr::core
