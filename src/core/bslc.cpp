#include "core/bslc.hpp"

#include "core/engine.hpp"

namespace slspvr::core {

Ownership BslcCompositor::composite(mp::Comm& comm, img::Image& image,
                                    const SwapOrder& order, Counters& counters,
                                    EngineContext& engine) const {
  // Interleaved (Figure 6) splits balance non-blank pixels across PEs; the
  // ablation mode degrades to contiguous halves of the progression.
  return plan_composite(
      binary_swap_plan(comm.size(),
                       interleaved_ ? SplitRule::kBalanced : SplitRule::kContiguous),
      codec_for(CodecKind::kInterleavedRle), TrackerKind::kNone, comm, image, order,
      counters, engine);
}


check::CommSchedule BslcCompositor::schedule(int ranks) const {
  return derive_schedule(
      binary_swap_plan(ranks,
                       interleaved_ ? SplitRule::kBalanced : SplitRule::kContiguous),
      codec_for(CodecKind::kInterleavedRle).traits(), name());
}

}  // namespace slspvr::core
