// PlanEngine: one stage loop that executes any (plan, codec, tracker) triple.
//
// plan_composite replaces the five near-identical per-method stage loops the
// binary-swap family used to carry: it walks an ExchangePlan stage by stage,
// splits the rank's current region per the plan's SplitRule, encodes the
// outgoing parts with the PayloadCodec (clipped by the RegionTracker for
// sparse codecs), exchanges them, and composites the incoming contributions
// per the plan's FrontRule. derive_schedule lowers the same plan object to
// the static model slspvr-check verifies, so the checked schedule is by
// construction the program this loop runs.
#pragma once

#include "core/codec.hpp"
#include "core/compositor.hpp"
#include "core/plan.hpp"
#include "core/region_tracker.hpp"

namespace slspvr::core {

/// Execute `plan` with `codec` payloads. Runs SPMD on every rank, exactly
/// like Compositor::composite. All engine state — worker fan-out, fused
/// decode, the send-buffer arena, the depth-order scratch frame — comes
/// from `engine`, which the loop holds exclusively for the duration of the
/// call (a second frame passing the same context throws). Requirements:
///  * plan.ranks == comm.size();
///  * kSwapBit plans pair on rank bit s at stage s (binary swap, tree);
///  * kDepthOrder plans need `order.front_to_back` to cover every rank;
///  * ring plans are schedule-only and rejected here.
Ownership plan_composite(const ExchangePlan& plan, const PayloadCodec& codec,
                         TrackerKind tracker_kind, mp::Comm& comm, img::Image& image,
                         const SwapOrder& order, Counters& counters, EngineContext& engine);

/// Per-stage partial-result retention for mid-frame repair. When a sink is
/// installed on a PE thread, plan_composite reports the rank's partial
/// composite and owned rectangle after every completed stage of a balanced
/// rect plan — the snapshots Experiment::run_ft resumes from when a peer
/// dies later in the protocol. Scalar/band/gather plans report nothing
/// (their state is not a rectangle; resume falls back to degrade).
class StageSnapshotSink {
 public:
  virtual ~StageSnapshotSink() = default;
  /// `stage` is the 1-based stage marker; `image` holds the partial
  /// composite, valid inside `region`. Called on the rank's own PE thread.
  virtual void on_stage_complete(int rank, int stage, const img::Image& image,
                                 const img::Rect& region) = 0;
};

/// Install / read the calling thread's snapshot sink (thread-local, so each
/// PE thread of a run can be wired independently; null disables retention —
/// the default, costing nothing on the fault-free path).
void set_stage_retention(StageSnapshotSink* sink) noexcept;
[[nodiscard]] StageSnapshotSink* stage_retention() noexcept;

}  // namespace slspvr::core
