#include "core/engine.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "core/worker_pool.hpp"
#include "image/kernels.hpp"

namespace slspvr::core {

namespace {

/// Static horizontal bands of the full frame (direct send's floor-ratio
/// boundaries, matching the historical band_of).
[[nodiscard]] std::vector<img::Rect> band_parts(const img::Rect& bounds, int radix) {
  std::vector<img::Rect> parts(static_cast<std::size_t>(radix));
  const std::int64_t h = bounds.height();
  for (int j = 0; j < radix; ++j) {
    const int y0 = bounds.y0 + static_cast<int>(h * j / radix);
    const int y1 = bounds.y0 + static_cast<int>(h * (j + 1) / radix);
    parts[static_cast<std::size_t>(j)] = img::Rect{bounds.x0, y0, bounds.x1, y1};
  }
  return parts;
}

/// Split an interleaved progression `radix` ways: balanced keeps every part
/// evenly spread (stride multiplies — InterleavedRange::split at radix 2);
/// contiguous takes consecutive index blocks with ceil boundaries.
[[nodiscard]] std::vector<img::InterleavedRange> split_range_parts(
    const img::InterleavedRange& range, int radix, SplitRule split) {
  std::vector<img::InterleavedRange> parts(static_cast<std::size_t>(radix));
  if (split == SplitRule::kContiguous) {
    for (int j = 0; j < radix; ++j) {
      const std::int64_t c0 = (range.count * j + radix - 1) / radix;
      const std::int64_t c1 = (range.count * (j + 1) + radix - 1) / radix;
      parts[static_cast<std::size_t>(j)] =
          img::InterleavedRange{range.offset + c0 * range.stride, range.stride, c1 - c0};
    }
  } else {
    for (int j = 0; j < radix; ++j) {
      parts[static_cast<std::size_t>(j)] =
          img::InterleavedRange{range.offset + j * range.stride, range.stride * radix,
                                (range.count + radix - 1 - j) / radix};
    }
  }
  return parts;
}

/// The calling PE thread's snapshot sink (null = retention off). Genuinely
/// per-PE-thread (not per pool worker): only the rank's own thread walks the
/// stage loop; pool workers never consult it.
thread_local StageSnapshotSink* g_stage_retention = nullptr;

/// Band-parallel "own contribution" blend of a depth-order rect stage:
/// result = result OVER image inside `rect`, row bands fanned across the
/// pool. Same per-pixel arithmetic as img::composite_region (which this
/// replaces on the engine path); charges rect.area() over ops like it.
void composite_own_rect(WorkerPool& pool, img::Image& result, const img::Image& image,
                        const img::Rect& rect, Counters& counters) {
  if (rect.empty()) return;
  const int nworkers = pool.workers();
  pool.run([&](int w) {
    const ChunkBounds band = chunk_bounds(rect.height(), nworkers, w);
    for (std::int64_t y = band.first; y < band.last; ++y) {
      const int row = rect.y0 + static_cast<int>(y);
      img::kern::composite_span(&result.at(rect.x0, row), &image.at(rect.x0, row),
                                rect.width(), /*incoming_in_front=*/false);
    }
  });
  counters.over_ops += rect.area();
}

/// Band-parallel "own contribution" blend of a depth-order scalar stage:
/// gather both strided progressions contiguous (per-worker staging), blend
/// with the span kernel, scatter back — same arithmetic/order as the
/// historical per-pixel loop, batched and banded.
void composite_own_range(WorkerPool& pool, img::Image& result, const img::Image& image,
                         const img::InterleavedRange& keep, Counters& counters) {
  const int nworkers = pool.workers();
  pool.run([&](int w) {
    const ChunkBounds band = chunk_bounds(keep.count, nworkers, w);
    if (band.count() == 0) return;
    EngineScratch& scratch = pool.scratch(w);
    const auto n = static_cast<std::size_t>(band.count());
    if (scratch.staging.size() < n) scratch.staging.resize(n);
    if (scratch.staging2.size() < n) scratch.staging2.resize(n);
    const std::int64_t offset = keep.offset + band.first * keep.stride;
    img::kern::gather_strided(result.pixels().data(), offset, keep.stride, band.count(),
                              scratch.staging.data());
    img::kern::gather_strided(image.pixels().data(), offset, keep.stride, band.count(),
                              scratch.staging2.data());
    img::kern::composite_span(scratch.staging.data(), scratch.staging2.data(), band.count(),
                              /*incoming_in_front=*/false);
    img::kern::scatter_strided(scratch.staging.data(), band.count(), result.pixels().data(),
                               offset, keep.stride);
  });
  counters.over_ops += keep.count;
}

/// SoA compact-and-blend of one BSLC stage: gather the kept element-space
/// progression of `elems` contiguous into `dst` (the compaction) and, when a
/// message arrived, blend its RLE payload over `dst` in place. Both steps
/// band across the pool; each element's gather and blend arithmetic is
/// exactly the legacy composite_rle_strided's, so the compacted array equals
/// the frame values the in-place engine would hold at those positions.
/// Returns the number of pixels composited (the non-blank payload total).
std::int64_t soa_compact_blend(WorkerPool& pool, const img::Pixel* elems,
                               const img::InterleavedRange& ekeep, const wire::RleView* view,
                               bool incoming_in_front, std::vector<img::Pixel>& dst) {
  dst.resize(static_cast<std::size_t>(ekeep.count));
  if (ekeep.count == 0) return 0;
  const int nworkers = pool.workers();
  std::vector<img::kern::RleCursor> cursors(static_cast<std::size_t>(nworkers));
  if (view != nullptr) {
    img::kern::RleCursor cur;
    std::int64_t at = 0;
    for (int w = 0; w < nworkers; ++w) {
      const ChunkBounds band = chunk_bounds(ekeep.count, nworkers, w);
      img::kern::rle_skip(view->codes, view->ncodes, cur, band.first - at);
      at = band.first;
      cursors[static_cast<std::size_t>(w)] = cur;
    }
  }
  std::vector<std::int64_t> composited(static_cast<std::size_t>(nworkers), 0);
  pool.run([&](int w) {
    const ChunkBounds band = chunk_bounds(ekeep.count, nworkers, w);
    if (band.count() == 0) return;
    img::kern::gather_strided(elems, ekeep.offset + band.first * ekeep.stride, ekeep.stride,
                              band.count(), dst.data() + band.first);
    if (view != nullptr) {
      img::kern::RleCursor cur = cursors[static_cast<std::size_t>(w)];
      // width == row_stride degenerates composite_rle_span to one contiguous
      // span over dst — the SoA case.
      composited[static_cast<std::size_t>(w)] = img::kern::composite_rle_span(
          dst.data(), band.first, ekeep.count, ekeep.count, view->codes, view->ncodes,
          view->pixels, cur, band.count(), incoming_in_front);
    }
  });
  std::int64_t total = 0;
  for (const std::int64_t c : composited) total += c;
  return total;
}

}  // namespace

void set_stage_retention(StageSnapshotSink* sink) noexcept { g_stage_retention = sink; }

StageSnapshotSink* stage_retention() noexcept { return g_stage_retention; }

Ownership plan_composite(const ExchangePlan& plan, const PayloadCodec& codec,
                         TrackerKind tracker_kind, mp::Comm& comm, img::Image& image,
                         const SwapOrder& order, Counters& counters, EngineContext& engine) {
  // Exclusive hold for the whole stage loop: a second frame passing the
  // same context fails deterministically instead of racing on scratch.
  const EngineContext::UseGuard exclusive(engine);
  const int rank = comm.rank();
  if (plan.ranks != comm.size()) {
    throw std::invalid_argument("plan_composite: plan is for " + std::to_string(plan.ranks) +
                                " ranks, communicator has " + std::to_string(comm.size()));
  }
  if (plan.split == SplitRule::kRing) {
    throw std::logic_error("plan_composite: ring plans are schedule-only");
  }
  const bool scalar = codec.scalar();
  if (scalar &&
      (plan.split != SplitRule::kBalanced && plan.split != SplitRule::kContiguous)) {
    throw std::invalid_argument("plan_composite: scalar codec " + std::string(codec.name()) +
                                " needs a balanced or contiguous split");
  }
  if (!scalar && plan.split == SplitRule::kContiguous) {
    throw std::invalid_argument("plan_composite: contiguous splits are scalar-only");
  }

  WorkerPool& pool = engine.pool();

  img::Rect region = image.bounds();
  img::InterleavedRange range = img::InterleavedRange::whole(image.pixel_count());
  // Only sparse rect codecs carry a tracked rectangle (and pay its scan).
  const bool clip_parts = !scalar && codec.tracks_rect();
  RegionTracker tracker(clip_parts ? tracker_kind : TrackerKind::kNone);
  if (clip_parts) tracker.init(image, counters);

  img::PackBuffer& buf = pool.scratch(0).pack;

  // BSLC SoA fast path (scalar, pairwise, fused, fanned out): keep the
  // progression compacted contiguous in scratch between stages instead of
  // strided across the whole frame. Encode reads one dense array; decode
  // compacts and blends in one banded pass. The compaction pass touches
  // every kept element (blank or not), which only pays off when its bands
  // actually run in parallel — with a 1-wide pool the in-place strided walk
  // touches strictly less memory, so SoA engages only for wider pools.
  // `elems`/`ecount` track the compacted progression (initially the frame
  // itself: offset 0, stride 1); `range` still tracks the frame-space
  // ownership descriptor for the final scatter and the returned Ownership.
  // Byte-identical wire bytes, counters and owned pixels — only where
  // intermediates live changes.
  const bool soa = scalar && plan.front == FrontRule::kSwapBit &&
                   engine.config().fused_decode && pool.workers() > 1;
  const img::Pixel* elems = image.pixels().data();
  std::int64_t ecount = image.pixel_count();
  std::vector<img::Pixel>* soa_buf = nullptr;  // null = `elems` is the frame

  const int stages = plan.stages();
  for (int st = 0; st < stages; ++st) {
    const RankStage& rs =
        plan.per_rank[static_cast<std::size_t>(rank)][static_cast<std::size_t>(st)];
    if (rs.sends.empty() && rs.recv_peers.empty()) continue;  // retired rank
    comm.set_stage(st + 1);
    const int tag = st + 1;

    if (soa) {
      // Element-space split: part j of {0,1,ecount} selects exactly the
      // elements frame-space part j of `range` selects, because compaction
      // preserved progression order.
      const std::vector<img::InterleavedRange> eparts =
          split_range_parts(img::InterleavedRange{0, 1, ecount}, rs.radix, plan.split);
      for (const PartSend& ps : rs.sends) {
        buf.clear();
        const img::Rle rle = wire::encode_strided_base(
            elems, eparts[static_cast<std::size_t>(ps.part)], counters);
        counters.pixels_sent += rle.non_blank_count();
        buf.reserve(buf.size() + static_cast<std::size_t>(rle.wire_bytes()));
        wire::pack_rle(rle, buf);
        comm.send(ps.peer, tag, buf.bytes());
      }
      if (rs.recv_peers.size() > 1) {
        throw std::logic_error("plan_composite: kSwapBit stages receive from one peer");
      }
      if (rs.keep >= 0) {
        const img::InterleavedRange ekeep = eparts[static_cast<std::size_t>(rs.keep)];
        std::vector<img::Pixel>& dst = (soa_buf == &pool.scratch(0).soa_a)
                                           ? pool.scratch(0).soa_b
                                           : pool.scratch(0).soa_a;
        if (rs.recv_peers.empty()) {
          soa_compact_blend(pool, elems, ekeep, nullptr, false, dst);
        } else {
          const bool in_front = order.incoming_in_front(rank, st);
          const auto received = comm.recv(rs.recv_peers.front(), tag);
          img::UnpackBuffer in(received);
          EngineScratch& s0 = pool.scratch(0);
          const wire::RleView view =
              wire::parse_rle_view(in, ekeep.count, s0.bounce, s0.code_bounce);
          const std::int64_t composited =
              soa_compact_blend(pool, elems, ekeep, &view, in_front, dst);
          counters.over_ops += composited;
          counters.pixels_received += composited;
        }
        elems = dst.data();
        ecount = ekeep.count;
        soa_buf = &dst;
        range = split_range_parts(range, rs.radix, plan.split)[static_cast<std::size_t>(rs.keep)];
      } else {
        // Drained the receives above (none in practice: keep < 0 ranks only
        // send); ownership collapses to the empty progression.
        elems = nullptr;
        ecount = 0;
        range = img::InterleavedRange{0, 1, 0};
      }
      counters.mark_stage();
      continue;
    }

    std::vector<img::Rect> rparts;
    std::vector<img::InterleavedRange> sparts;
    if (scalar) {
      sparts = split_range_parts(range, rs.radix, plan.split);
    } else if (plan.split == SplitRule::kBand) {
      rparts = band_parts(image.bounds(), rs.radix);
    } else if (plan.split == SplitRule::kGather) {
      rparts = {region};  // part 0 is the whole accumulated region
    } else {
      rparts = split_rect_parts(region, rs.radix);
    }
    const img::Rect keep_rect =
        (!scalar && rs.keep >= 0) ? rparts[static_cast<std::size_t>(rs.keep)] : img::kEmptyRect;

    // Sends first, in plan order (sends are eager, so this cannot deadlock
    // and matches the event order derive_schedule emits).
    for (const PartSend& ps : rs.sends) {
      buf.clear();
      if (scalar) {
        codec.encode_range(image, sparts[static_cast<std::size_t>(ps.part)], buf, counters);
      } else {
        const img::Rect part = rparts[static_cast<std::size_t>(ps.part)];
        codec.encode_rect(image, part, tracker.clip(part), buf, counters);
      }
      comm.send(ps.peer, tag, buf.bytes());
    }

    img::Rect recv_union = img::kEmptyRect;
    if (plan.front == FrontRule::kSwapBit) {
      // Pairing on rank bit `st`: composite the single partner's payload in
      // place, front side decided by the order's per-bit rule.
      if (rs.recv_peers.size() > 1) {
        throw std::logic_error("plan_composite: kSwapBit stages receive from one peer");
      }
      for (const int peer : rs.recv_peers) {
        const bool in_front = order.incoming_in_front(rank, st);
        const auto received = comm.recv(peer, tag);
        img::UnpackBuffer in(received);
        DecodeSink sink{image, in_front, counters, engine};
        if (scalar) {
          codec.decode_range_into(sink, sparts[static_cast<std::size_t>(rs.keep)], in);
        } else {
          recv_union =
              img::bounding_union(recv_union, codec.decode_rect_into(sink, keep_rect, in));
        }
      }
    } else {
      // Depth-order grouping: buffer every contribution, then composite the
      // kept part front-to-back (left-associative, like the reference).
      std::vector<std::vector<std::byte>> inbox;
      inbox.reserve(rs.recv_peers.size());
      for (const int peer : rs.recv_peers) inbox.push_back(comm.recv(peer, tag));

      img::Image& result = engine.scratch_frame(image.width(), image.height());
      std::size_t composited = 0;
      for (const int contributor : order.front_to_back) {
        if (contributor == rank) {
          if (scalar) {
            composite_own_range(pool, result, image, sparts[static_cast<std::size_t>(rs.keep)],
                                counters);
          } else {
            composite_own_rect(pool, result, image, keep_rect, counters);
          }
          ++composited;
          continue;
        }
        const auto slot = std::find(rs.recv_peers.begin(), rs.recv_peers.end(), contributor);
        if (slot == rs.recv_peers.end()) continue;
        img::UnpackBuffer in(inbox[static_cast<std::size_t>(slot - rs.recv_peers.begin())]);
        // `result` holds everything nearer, so the incoming pixels are
        // behind: local over incoming.
        DecodeSink sink{result, /*incoming_in_front=*/false, counters, engine};
        if (scalar) {
          codec.decode_range_into(sink, sparts[static_cast<std::size_t>(rs.keep)], in);
        } else {
          recv_union =
              img::bounding_union(recv_union, codec.decode_rect_into(sink, keep_rect, in));
        }
        ++composited;
      }
      if (composited != rs.recv_peers.size() + 1) {
        throw std::invalid_argument(
            "plan_composite: order.front_to_back does not cover this stage's group");
      }
      // Swap rather than move: the retired buffer becomes the next stage's
      // (pre-owned) scratch frame instead of being freed.
      std::swap(image, result);
    }

    if (clip_parts) tracker.after_stage(image, keep_rect, recv_union, counters);
    if (scalar) {
      range = rs.keep >= 0 ? sparts[static_cast<std::size_t>(rs.keep)]
                           : img::InterleavedRange{0, 1, 0};
    } else {
      region = rs.keep >= 0 ? keep_rect : img::kEmptyRect;
    }
    counters.mark_stage();
    // Mid-frame repair retention: after each completed stage of a balanced
    // rect plan, hand the installed sink the partial this rank now owns.
    if (!scalar && plan.split == SplitRule::kBalanced && g_stage_retention != nullptr) {
      g_stage_retention->on_stage_complete(rank, st + 1, image, region);
    }
  }
  comm.set_stage(0);

  // SoA epilogue: the owned progression lives compacted in scratch; scatter
  // it to its frame-space positions so gather_final (which reads only the
  // ownership range) sees the same pixels the in-place engine produces.
  // Pixels outside the owned range are not restored — nothing reads them.
  if (soa && soa_buf != nullptr) {
    img::kern::scatter_strided(elems, ecount, image.pixels().data(), range.offset,
                               range.stride);
  }

  if (plan.split == SplitRule::kGather) return Ownership::full_at_root();
  if (scalar) return Ownership::interleaved(range);
  return Ownership::full_rect(region);
}

}  // namespace slspvr::core
