#include "core/engine.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "image/kernels.hpp"

namespace slspvr::core {

namespace {

/// Static horizontal bands of the full frame (direct send's floor-ratio
/// boundaries, matching the historical band_of).
[[nodiscard]] std::vector<img::Rect> band_parts(const img::Rect& bounds, int radix) {
  std::vector<img::Rect> parts(static_cast<std::size_t>(radix));
  const std::int64_t h = bounds.height();
  for (int j = 0; j < radix; ++j) {
    const int y0 = bounds.y0 + static_cast<int>(h * j / radix);
    const int y1 = bounds.y0 + static_cast<int>(h * (j + 1) / radix);
    parts[static_cast<std::size_t>(j)] = img::Rect{bounds.x0, y0, bounds.x1, y1};
  }
  return parts;
}

/// Split an interleaved progression `radix` ways: balanced keeps every part
/// evenly spread (stride multiplies — InterleavedRange::split at radix 2);
/// contiguous takes consecutive index blocks with ceil boundaries.
[[nodiscard]] std::vector<img::InterleavedRange> split_range_parts(
    const img::InterleavedRange& range, int radix, SplitRule split) {
  std::vector<img::InterleavedRange> parts(static_cast<std::size_t>(radix));
  if (split == SplitRule::kContiguous) {
    for (int j = 0; j < radix; ++j) {
      const std::int64_t c0 = (range.count * j + radix - 1) / radix;
      const std::int64_t c1 = (range.count * (j + 1) + radix - 1) / radix;
      parts[static_cast<std::size_t>(j)] =
          img::InterleavedRange{range.offset + c0 * range.stride, range.stride, c1 - c0};
    }
  } else {
    for (int j = 0; j < radix; ++j) {
      parts[static_cast<std::size_t>(j)] =
          img::InterleavedRange{range.offset + j * range.stride, range.stride * radix,
                                (range.count + radix - 1 - j) / radix};
    }
  }
  return parts;
}

/// The calling PE thread's snapshot sink (null = retention off).
thread_local StageSnapshotSink* g_stage_retention = nullptr;

}  // namespace

img::PackBuffer& scratch_pack_buffer() {
  thread_local img::PackBuffer buf;
  return buf;
}

img::Image& scratch_frame(int width, int height) {
  thread_local img::Image frame;
  if (frame.width() != width || frame.height() != height) {
    frame = img::Image(width, height);  // freshly zeroed by construction
  } else {
    img::kern::fill_zero(frame.pixels().data(), frame.pixel_count());
  }
  return frame;
}

void set_stage_retention(StageSnapshotSink* sink) noexcept { g_stage_retention = sink; }

StageSnapshotSink* stage_retention() noexcept { return g_stage_retention; }

Ownership plan_composite(const ExchangePlan& plan, const PayloadCodec& codec,
                         TrackerKind tracker_kind, mp::Comm& comm, img::Image& image,
                         const SwapOrder& order, Counters& counters) {
  const int rank = comm.rank();
  if (plan.ranks != comm.size()) {
    throw std::invalid_argument("plan_composite: plan is for " + std::to_string(plan.ranks) +
                                " ranks, communicator has " + std::to_string(comm.size()));
  }
  if (plan.split == SplitRule::kRing) {
    throw std::logic_error("plan_composite: ring plans are schedule-only");
  }
  const bool scalar = codec.scalar();
  if (scalar &&
      (plan.split != SplitRule::kBalanced && plan.split != SplitRule::kContiguous)) {
    throw std::invalid_argument("plan_composite: scalar codec " + std::string(codec.name()) +
                                " needs a balanced or contiguous split");
  }
  if (!scalar && plan.split == SplitRule::kContiguous) {
    throw std::invalid_argument("plan_composite: contiguous splits are scalar-only");
  }

  img::Rect region = image.bounds();
  img::InterleavedRange range = img::InterleavedRange::whole(image.pixel_count());
  // Only sparse rect codecs carry a tracked rectangle (and pay its scan).
  const bool clip_parts = !scalar && codec.tracks_rect();
  RegionTracker tracker(clip_parts ? tracker_kind : TrackerKind::kNone);
  if (clip_parts) tracker.init(image, counters);

  img::PackBuffer& buf = scratch_pack_buffer();

  const int stages = plan.stages();
  for (int st = 0; st < stages; ++st) {
    const RankStage& rs =
        plan.per_rank[static_cast<std::size_t>(rank)][static_cast<std::size_t>(st)];
    if (rs.sends.empty() && rs.recv_peers.empty()) continue;  // retired rank
    comm.set_stage(st + 1);
    const int tag = st + 1;

    std::vector<img::Rect> rparts;
    std::vector<img::InterleavedRange> sparts;
    if (scalar) {
      sparts = split_range_parts(range, rs.radix, plan.split);
    } else if (plan.split == SplitRule::kBand) {
      rparts = band_parts(image.bounds(), rs.radix);
    } else if (plan.split == SplitRule::kGather) {
      rparts = {region};  // part 0 is the whole accumulated region
    } else {
      rparts = split_rect_parts(region, rs.radix);
    }
    const img::Rect keep_rect =
        (!scalar && rs.keep >= 0) ? rparts[static_cast<std::size_t>(rs.keep)] : img::kEmptyRect;

    // Sends first, in plan order (sends are eager, so this cannot deadlock
    // and matches the event order derive_schedule emits).
    for (const PartSend& ps : rs.sends) {
      buf.clear();
      if (scalar) {
        codec.encode_range(image, sparts[static_cast<std::size_t>(ps.part)], buf, counters);
      } else {
        const img::Rect part = rparts[static_cast<std::size_t>(ps.part)];
        codec.encode_rect(image, part, tracker.clip(part), buf, counters);
      }
      comm.send(ps.peer, tag, buf.bytes());
    }

    img::Rect recv_union = img::kEmptyRect;
    if (plan.front == FrontRule::kSwapBit) {
      // Pairing on rank bit `st`: composite the single partner's payload in
      // place, front side decided by the order's per-bit rule.
      if (rs.recv_peers.size() > 1) {
        throw std::logic_error("plan_composite: kSwapBit stages receive from one peer");
      }
      for (const int peer : rs.recv_peers) {
        const bool in_front = order.incoming_in_front(rank, st);
        const auto received = comm.recv(peer, tag);
        img::UnpackBuffer in(received);
        if (scalar) {
          codec.decode_range(image, sparts[static_cast<std::size_t>(rs.keep)], in, in_front,
                             counters);
        } else {
          recv_union = img::bounding_union(
              recv_union, codec.decode_rect(image, keep_rect, in, in_front, counters));
        }
      }
    } else {
      // Depth-order grouping: buffer every contribution, then composite the
      // kept part front-to-back (left-associative, like the reference).
      std::vector<std::vector<std::byte>> inbox;
      inbox.reserve(rs.recv_peers.size());
      for (const int peer : rs.recv_peers) inbox.push_back(comm.recv(peer, tag));

      img::Image& result = scratch_frame(image.width(), image.height());
      std::size_t composited = 0;
      for (const int contributor : order.front_to_back) {
        if (contributor == rank) {
          if (scalar) {
            // Gather both strided progressions contiguous, blend with the
            // span kernel, scatter back — same arithmetic/order as the
            // per-pixel loop, batched.
            const img::InterleavedRange keep = sparts[static_cast<std::size_t>(rs.keep)];
            thread_local std::vector<img::Pixel> keep_local, keep_in;
            keep_local.resize(static_cast<std::size_t>(keep.count));
            keep_in.resize(static_cast<std::size_t>(keep.count));
            img::kern::gather_strided(result.pixels().data(), keep.offset, keep.stride,
                                      keep.count, keep_local.data());
            img::kern::gather_strided(image.pixels().data(), keep.offset, keep.stride,
                                      keep.count, keep_in.data());
            img::kern::composite_span(keep_local.data(), keep_in.data(), keep.count,
                                      /*incoming_in_front=*/false);
            img::kern::scatter_strided(keep_local.data(), keep.count, result.pixels().data(),
                                       keep.offset, keep.stride);
            counters.over_ops += keep.count;
          } else {
            counters.over_ops +=
                img::composite_region(result, image, keep_rect, /*incoming_in_front=*/false);
          }
          ++composited;
          continue;
        }
        const auto slot = std::find(rs.recv_peers.begin(), rs.recv_peers.end(), contributor);
        if (slot == rs.recv_peers.end()) continue;
        img::UnpackBuffer in(inbox[static_cast<std::size_t>(slot - rs.recv_peers.begin())]);
        // `result` holds everything nearer, so the incoming pixels are
        // behind: local over incoming.
        if (scalar) {
          codec.decode_range(result, sparts[static_cast<std::size_t>(rs.keep)], in,
                             /*incoming_in_front=*/false, counters);
        } else {
          recv_union = img::bounding_union(
              recv_union,
              codec.decode_rect(result, keep_rect, in, /*incoming_in_front=*/false, counters));
        }
        ++composited;
      }
      if (composited != rs.recv_peers.size() + 1) {
        throw std::invalid_argument(
            "plan_composite: order.front_to_back does not cover this stage's group");
      }
      // Swap rather than move: the retired buffer becomes the next stage's
      // (pre-owned) scratch frame instead of being freed.
      std::swap(image, result);
    }

    if (clip_parts) tracker.after_stage(image, keep_rect, recv_union, counters);
    if (scalar) {
      range = rs.keep >= 0 ? sparts[static_cast<std::size_t>(rs.keep)]
                           : img::InterleavedRange{0, 1, 0};
    } else {
      region = rs.keep >= 0 ? keep_rect : img::kEmptyRect;
    }
    counters.mark_stage();
    // Mid-frame repair retention: after each completed stage of a balanced
    // rect plan, hand the installed sink the partial this rank now owns.
    if (!scalar && plan.split == SplitRule::kBalanced && g_stage_retention != nullptr) {
      g_stage_retention->on_stage_complete(rank, st + 1, image, region);
    }
  }
  comm.set_stage(0);

  if (plan.split == SplitRule::kGather) return Ownership::full_at_root();
  if (scalar) return Ownership::interleaved(range);
  return Ownership::full_rect(region);
}

}  // namespace slspvr::core
