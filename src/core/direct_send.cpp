#include "core/direct_send.hpp"

#include "core/engine.hpp"

namespace slspvr::core {

img::Rect DirectSendCompositor::band_of(const img::Rect& bounds, int rank, int ranks) {
  const int h = bounds.height();
  const int y0 = bounds.y0 + static_cast<int>(static_cast<std::int64_t>(h) * rank / ranks);
  const int y1 = bounds.y0 + static_cast<int>(static_cast<std::int64_t>(h) * (rank + 1) / ranks);
  return img::Rect{bounds.x0, y0, bounds.x1, y1};
}

Ownership DirectSendCompositor::composite(mp::Comm& comm, img::Image& image,
                                          const SwapOrder& order,
                                          Counters& counters,
                                    EngineContext& engine) const {
  // Sparse clips each outgoing band to the sender's bounding rectangle (one
  // O(A) scan, like BSBR's first stage); full ships whole bands raw.
  return plan_composite(
      direct_send_plan(comm.size()),
      codec_for(sparse_ ? CodecKind::kBoundingRect : CodecKind::kFullPixel),
      sparse_ ? TrackerKind::kUnion : TrackerKind::kNone, comm, image, order, counters, engine);
}


check::CommSchedule DirectSendCompositor::schedule(int ranks) const {
  return derive_schedule(
      direct_send_plan(ranks),
      codec_for(sparse_ ? CodecKind::kBoundingRect : CodecKind::kFullPixel).traits(), name());
}

}  // namespace slspvr::core
