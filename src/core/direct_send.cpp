#include "core/direct_send.hpp"

#include <vector>

#include "core/wire.hpp"

namespace slspvr::core {

img::Rect DirectSendCompositor::band_of(const img::Rect& bounds, int rank, int ranks) {
  const int h = bounds.height();
  const int y0 = bounds.y0 + static_cast<int>(static_cast<std::int64_t>(h) * rank / ranks);
  const int y1 = bounds.y0 + static_cast<int>(static_cast<std::int64_t>(h) * (rank + 1) / ranks);
  return img::Rect{bounds.x0, y0, bounds.x1, y1};
}

Ownership DirectSendCompositor::composite(mp::Comm& comm, img::Image& image,
                                          const SwapOrder& order,
                                          Counters& counters) const {
  const int ranks = comm.size();
  const int rank = comm.rank();
  const img::Rect my_band = band_of(image.bounds(), rank, ranks);

  // In the sparse variant, clip each outgoing contribution to our bounding
  // rectangle (one O(A) scan, like BSBR's first stage).
  img::Rect local_rect = image.bounds();
  if (sparse_) {
    local_rect = img::bounding_rect_of(image, image.bounds(), &counters.rect_scanned);
  }

  comm.set_stage(1);  // the buffered case has a single exchange "stage"
  for (int peer = 0; peer < ranks; ++peer) {
    if (peer == rank) continue;
    const img::Rect band = band_of(image.bounds(), peer, ranks);
    const img::Rect send_rect = sparse_ ? img::intersect(local_rect, band) : band;
    img::PackBuffer buf;
    if (sparse_) buf.put(img::to_wire(send_rect));
    if (!send_rect.empty()) {
      wire::pack_rect_pixels(image, send_rect, buf);
      counters.pixels_sent += send_rect.area();
    }
    comm.send(peer, 1, buf.bytes());
  }

  // Buffer all n-1 contributions, then composite in depth order: front-most
  // first into a fresh accumulation of our band.
  std::vector<std::vector<std::byte>> inbox(static_cast<std::size_t>(ranks));
  for (int peer = 0; peer < ranks; ++peer) {
    if (peer == rank) continue;
    inbox[static_cast<std::size_t>(peer)] = comm.recv(peer, 1);
  }
  comm.set_stage(0);

  img::Image result(image.width(), image.height());
  for (const int contributor : order.front_to_back) {
    if (contributor == rank) {
      // Composite our own band pixels in place.
      counters.over_ops +=
          img::composite_region(result, image, my_band, /*incoming_in_front=*/false);
      continue;
    }
    img::UnpackBuffer in(inbox[static_cast<std::size_t>(contributor)]);
    img::Rect rect = my_band;
    if (sparse_) {
      rect = wire::parse_rect(in, result.bounds());
      if (rect.empty()) continue;
    }
    // `result` holds everything nearer than `contributor`, so the incoming
    // pixels are behind: local over incoming.
    wire::unpack_composite_rect(result, rect, in, /*incoming_in_front=*/false, counters);
  }

  counters.mark_stage();
  image = std::move(result);
  return Ownership::full_rect(my_band);
}


check::CommSchedule DirectSendCompositor::schedule(int ranks) const {
  return check::direct_send_schedule(name(), ranks, sparse_);
}

}  // namespace slspvr::core
