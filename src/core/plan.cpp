#include "core/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace slspvr::core {

namespace {

[[nodiscard]] bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

[[nodiscard]] int log2_exact(int n) {
  int levels = 0;
  while ((1 << levels) < n) ++levels;
  return levels;
}

void require_positive(int ranks, const char* what) {
  if (ranks <= 0) {
    throw std::invalid_argument(std::string(what) + ": ranks must be positive, got " +
                                std::to_string(ranks));
  }
}

/// Region state a rank's pieces pass through while deriving a schedule.
struct RegionState {
  std::vector<int> radices;  ///< split factors applied so far
  int bands = 1;
  bool retired = false;  ///< tree sender that shipped its region away
};

/// Emit the legacy `halvings` encoding whenever the applied factors are all
/// radix 2 — that keeps the derived power-of-two schedules byte-identical
/// to the hand-built ones they replaced (Eq. (9) forms included).
[[nodiscard]] check::RegionSpec make_spec(const RegionState& state, bool scalar) {
  const bool all_binary = std::all_of(state.radices.begin(), state.radices.end(),
                                      [](int k) { return k == 2; });
  if (all_binary) {
    return check::RegionSpec{static_cast<int>(state.radices.size()), state.bands, scalar, {}};
  }
  return check::RegionSpec{0, state.bands, scalar, state.radices};
}

}  // namespace

ExchangePlan binary_swap_plan(int ranks, SplitRule split) {
  if (!is_power_of_two(ranks)) {
    throw std::invalid_argument(
        "binary-swap plans need a power-of-two rank count, got " + std::to_string(ranks) +
        " (wrap in Fold or use the k-ary plan)");
  }
  const int levels = log2_exact(ranks);
  ExchangePlan plan;
  plan.family = "binary-swap";
  plan.ranks = ranks;
  plan.pairwise = true;
  plan.split = split;
  plan.front = FrontRule::kSwapBit;
  plan.per_rank.assign(static_cast<std::size_t>(ranks),
                       std::vector<RankStage>(static_cast<std::size_t>(levels)));
  for (int r = 0; r < ranks; ++r) {
    for (int s = 0; s < levels; ++s) {
      const int partner = r ^ (1 << s);
      RankStage& stage = plan.per_rank[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)];
      stage.radix = 2;
      stage.keep = (r >> s) & 1;
      stage.sends = {{partner, 1 - stage.keep}};
      stage.recv_peers = {partner};
    }
  }
  return plan;
}

std::vector<int> kary_radices(int ranks) {
  require_positive(ranks, "kary_radices");
  std::vector<int> radices;
  int n = ranks;
  for (int f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      radices.push_back(f);
      n /= f;
    }
  }
  if (n > 1) radices.push_back(n);
  return radices;
}

ExchangePlan kary_plan(int ranks, SplitRule split) {
  require_positive(ranks, "kary_plan");
  const std::vector<int> radices = kary_radices(ranks);
  const int stages = static_cast<int>(radices.size());
  ExchangePlan plan;
  plan.family = "kary";
  plan.ranks = ranks;
  plan.pairwise = true;  // every group pair exchanges symmetrically
  plan.split = split;
  plan.front = FrontRule::kDepthOrder;
  plan.per_rank.assign(static_cast<std::size_t>(ranks),
                       std::vector<RankStage>(static_cast<std::size_t>(stages)));
  for (int r = 0; r < ranks; ++r) {
    int place = 1;
    for (int s = 0; s < stages; ++s) {
      const int k = radices[static_cast<std::size_t>(s)];
      const int digit = (r / place) % k;
      const int base = r - digit * place;
      RankStage& stage = plan.per_rank[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)];
      stage.radix = k;
      stage.keep = digit;
      for (int j = 0; j < k; ++j) {
        if (j == digit) continue;
        const int peer = base + j * place;
        stage.sends.push_back({peer, j});
        stage.recv_peers.push_back(peer);
      }
      place *= k;
    }
  }
  return plan;
}

ExchangePlan direct_send_plan(int ranks) {
  require_positive(ranks, "direct_send_plan");
  ExchangePlan plan;
  plan.family = "direct-send";
  plan.ranks = ranks;
  plan.pairwise = false;
  plan.split = SplitRule::kBand;
  plan.front = FrontRule::kDepthOrder;
  plan.per_rank.assign(static_cast<std::size_t>(ranks), std::vector<RankStage>(1));
  for (int r = 0; r < ranks; ++r) {
    RankStage& stage = plan.per_rank[static_cast<std::size_t>(r)].front();
    stage.radix = ranks;
    stage.keep = r;
    for (int peer = 0; peer < ranks; ++peer) {
      if (peer == r) continue;
      stage.sends.push_back({peer, peer});
      stage.recv_peers.push_back(peer);
    }
  }
  return plan;
}

ExchangePlan binary_tree_plan(int ranks) {
  if (!is_power_of_two(ranks)) {
    throw std::invalid_argument("binary-tree plans need a power-of-two rank count, got " +
                                std::to_string(ranks));
  }
  const int levels = log2_exact(ranks);
  ExchangePlan plan;
  plan.family = "binary-tree";
  plan.ranks = ranks;
  plan.pairwise = false;  // tree messages are one-directional
  plan.split = SplitRule::kGather;
  plan.front = FrontRule::kSwapBit;
  plan.per_rank.assign(static_cast<std::size_t>(ranks),
                       std::vector<RankStage>(static_cast<std::size_t>(levels)));
  for (int r = 0; r < ranks; ++r) {
    for (int s = 0; s < levels; ++s) {
      const int low = r & ((1 << (s + 1)) - 1);
      RankStage& stage = plan.per_rank[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)];
      if (low == 0) {
        stage.recv_peers = {r | (1 << s)};
      } else if (low == (1 << s)) {
        stage.keep = -1;  // retire after shipping the accumulated region
        stage.sends = {{r ^ (1 << s), 0}};
      }
      // Other ranks already retired: default RankStage, no events.
    }
  }
  return plan;
}

ExchangePlan ring_plan(int ranks) {
  require_positive(ranks, "ring_plan");
  const int steps = ranks > 1 ? ranks - 1 : 0;
  ExchangePlan plan;
  plan.family = "ring";
  plan.ranks = ranks;
  plan.pairwise = false;
  plan.split = SplitRule::kRing;
  plan.front = FrontRule::kDepthOrder;
  plan.per_rank.assign(static_cast<std::size_t>(ranks),
                       std::vector<RankStage>(static_cast<std::size_t>(steps)));
  for (int r = 0; r < ranks; ++r) {
    const int succ = (r + 1) % ranks;
    const int pred = (r - 1 + ranks) % ranks;
    for (int s = 0; s < steps; ++s) {
      RankStage& stage = plan.per_rank[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)];
      stage.radix = ranks;
      stage.keep = r;
      stage.sends = {{succ, ((r - s) % ranks + ranks) % ranks}};
      stage.recv_peers = {pred};
    }
  }
  return plan;
}

std::vector<img::Rect> split_rect_parts(const img::Rect& region, int radix) {
  const auto ceil_div = [](int a, int b) { return (a + b - 1) / b; };
  std::vector<img::Rect> parts(static_cast<std::size_t>(radix));
  if (region.width() >= region.height()) {
    const int w = region.width();
    for (int j = 0; j < radix; ++j) {
      parts[static_cast<std::size_t>(j)] =
          img::Rect{region.x0 + ceil_div(w * j, radix), region.y0,
                    region.x0 + ceil_div(w * (j + 1), radix), region.y1};
    }
  } else {
    const int h = region.height();
    for (int j = 0; j < radix; ++j) {
      parts[static_cast<std::size_t>(j)] =
          img::Rect{region.x0, region.y0 + ceil_div(h * j, radix), region.x1,
                    region.y0 + ceil_div(h * (j + 1), radix)};
    }
  }
  return parts;
}

EpochState plan_epoch_state(const ExchangePlan& plan, int completed_stages,
                            const img::Rect& frame) {
  require_positive(plan.ranks, "plan_epoch_state");
  if (plan.split != SplitRule::kBalanced) {
    throw std::invalid_argument(
        "plan_epoch_state: only balanced rect plans carry per-rank rectangle state");
  }
  if (completed_stages < 0 || completed_stages > plan.stages()) {
    throw std::invalid_argument("plan_epoch_state: completed_stages " +
                                std::to_string(completed_stages) + " out of range [0," +
                                std::to_string(plan.stages()) + "]");
  }
  EpochState state;
  state.region.assign(static_cast<std::size_t>(plan.ranks), frame);
  state.contributors.resize(static_cast<std::size_t>(plan.ranks));
  for (int r = 0; r < plan.ranks; ++r) {
    state.contributors[static_cast<std::size_t>(r)] = {r};
  }
  for (int st = 0; st < completed_stages; ++st) {
    // Contributor closure must read the *pre-stage* sets of every peer, so
    // work against a frozen copy.
    const std::vector<std::vector<int>> before = state.contributors;
    for (int r = 0; r < plan.ranks; ++r) {
      const RankStage& rs =
          plan.per_rank[static_cast<std::size_t>(r)][static_cast<std::size_t>(st)];
      if (rs.sends.empty() && rs.recv_peers.empty()) continue;  // retired
      auto& mine = state.contributors[static_cast<std::size_t>(r)];
      for (const int peer : rs.recv_peers) {
        const auto& theirs = before[static_cast<std::size_t>(peer)];
        mine.insert(mine.end(), theirs.begin(), theirs.end());
      }
      std::sort(mine.begin(), mine.end());
      mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
      auto& region = state.region[static_cast<std::size_t>(r)];
      region = rs.keep >= 0
                   ? split_rect_parts(region, rs.radix)[static_cast<std::size_t>(rs.keep)]
                   : img::kEmptyRect;
    }
  }
  return state;
}

ExchangePlan repair_plan(const ExchangePlan& plan, int completed_stages,
                         const std::vector<int>& survivors) {
  require_positive(plan.ranks, "repair_plan");
  if (completed_stages < 0 || completed_stages > plan.stages()) {
    throw std::invalid_argument("repair_plan: completed_stages " +
                                std::to_string(completed_stages) + " out of range [0," +
                                std::to_string(plan.stages()) + "]");
  }
  if (survivors.empty()) {
    throw std::invalid_argument("repair_plan: survivor set is empty");
  }
  if (!std::is_sorted(survivors.begin(), survivors.end()) ||
      std::adjacent_find(survivors.begin(), survivors.end()) != survivors.end()) {
    throw std::invalid_argument("repair_plan: survivors must be sorted and duplicate-free");
  }
  if (survivors.front() < 0 || survivors.back() >= plan.ranks) {
    throw std::invalid_argument("repair_plan: survivor rank out of range [0," +
                                std::to_string(plan.ranks) + ")");
  }
  // The repair exchange runs over sparse full-frame inputs, so its shape
  // depends only on how many ranks are left: a k-ary plan over the survivor
  // count (mixed radices absorb any count — no folding round needed).
  ExchangePlan repaired = kary_plan(static_cast<int>(survivors.size()), SplitRule::kBalanced);
  repaired.family = "repair";
  return repaired;
}

check::CommSchedule derive_schedule(const ExchangePlan& plan, const WireTraits& traits,
                                    std::string_view method) {
  require_positive(plan.ranks, "derive_schedule");
  check::CommSchedule s;
  s.method = method;
  s.ranks = plan.ranks;
  s.pairwise = plan.pairwise;
  s.per_rank.resize(static_cast<std::size_t>(plan.ranks));
  s.final_gather.resize(static_cast<std::size_t>(plan.ranks));

  for (int r = 0; r < plan.ranks; ++r) {
    auto& events = s.per_rank[static_cast<std::size_t>(r)];
    RegionState state;
    for (int st = 0; st < plan.stages(); ++st) {
      const RankStage& stage =
          plan.per_rank[static_cast<std::size_t>(r)][static_cast<std::size_t>(st)];
      const int tag = st + 1;
      if (!stage.sends.empty()) {
        // Symbolic region each outgoing part covers.
        check::RegionSpec spec;
        switch (plan.split) {
          case SplitRule::kBalanced:
          case SplitRule::kContiguous: {
            RegionState after = state;
            if (stage.radix > 1) after.radices.push_back(stage.radix);
            spec = make_spec(after, traits.scalar);
            break;
          }
          case SplitRule::kBand:
            spec = check::RegionSpec{0, state.bands * stage.radix, false, {}};
            break;
          case SplitRule::kGather:
            spec = make_spec(state, traits.scalar);  // ships the whole region
            break;
          case SplitRule::kRing:
            spec = check::RegionSpec{0, plan.ranks, false, {}};
            break;
        }
        const check::SizeBound bound{traits.payload, spec, traits.fixed_bytes,
                                     traits.per_pixel_bytes, traits.per_row_bytes};
        for (const PartSend& send : stage.sends) {
          events.push_back({check::EventKind::kSend, send.peer, tag, tag, bound});
        }
      }
      for (const int peer : stage.recv_peers) {
        events.push_back({check::EventKind::kRecv, peer, tag, tag, {}});
      }
      // Track the region the rank carries into the next stage.
      switch (plan.split) {
        case SplitRule::kBalanced:
        case SplitRule::kContiguous:
          if (stage.radix > 1) state.radices.push_back(stage.radix);
          break;
        case SplitRule::kBand:
          state.bands *= stage.radix;
          break;
        case SplitRule::kGather:
          if (stage.keep < 0) state.retired = true;
          break;
        case SplitRule::kRing:
          break;
      }
    }
    // Final ownership, shipped in the out-of-phase gather.
    check::SizeBound gather;
    if (plan.split == SplitRule::kGather) {
      gather = state.retired
                   ? check::SizeBound{check::PayloadClass::kNone, check::RegionSpec{}, 64, 0}
                   : check::SizeBound{check::PayloadClass::kFullRegion, check::RegionSpec{}, 64,
                                      16};
    } else if (plan.split == SplitRule::kRing) {
      gather = check::SizeBound{check::PayloadClass::kFullRegion,
                                check::RegionSpec{0, plan.ranks, false, {}}, 64, 16};
    } else {
      gather = check::SizeBound{check::PayloadClass::kFullRegion,
                                make_spec(state, traits.scalar), 64, 16};
    }
    s.final_gather[static_cast<std::size_t>(r)] = gather;
  }
  return s;
}

}  // namespace slspvr::core
