// RegionTracker: how a rank tracks the bounding rectangle of its non-blank
// pixels across compositing stages.
//
// The sparse methods clip every outgoing part to this rectangle (Sec. 3.2's
// T_bound optimisation). Two maintenance policies exist, previously hidden
// inside BSBRC's `tight_rescan_` flag: the O(1) bounding-union update the
// paper uses (algorithm line 21) and the exact-rescan ablation that re-scans
// the kept region each stage for a tight rectangle. Dense codecs use kNone
// and pay no scan at all.
#pragma once

#include "core/counters.hpp"
#include "image/image.hpp"

namespace slspvr::core {

enum class TrackerKind {
  kNone,    ///< no tracking: parts ship whole (BS, dense direct send, BSLC)
  kUnion,   ///< O(1): kept portion U received rectangle (paper's line 21)
  kRescan,  ///< exact: re-scan the kept region every stage (ablation)
};

class RegionTracker {
 public:
  explicit RegionTracker(TrackerKind kind) : kind_(kind) {}

  /// First-stage O(A) scan for the local bounding rectangle (T_bound).
  void init(const img::Image& image, Counters& counters) {
    if (kind_ == TrackerKind::kNone) return;
    rect_ = img::bounding_rect_of(image, image.bounds(), &counters.rect_scanned);
  }

  /// Clip an outgoing part to the tracked rectangle.
  [[nodiscard]] img::Rect clip(const img::Rect& part) const {
    return kind_ == TrackerKind::kNone ? part : img::intersect(rect_, part);
  }

  /// Fold one stage's outcome into the rectangle: the rank now owns `keep`
  /// and has composited contributions covering `received` into it.
  void after_stage(const img::Image& image, const img::Rect& keep, const img::Rect& received,
                   Counters& counters) {
    switch (kind_) {
      case TrackerKind::kNone:
        return;
      case TrackerKind::kUnion:
        rect_ = img::bounding_union(img::intersect(rect_, keep), received);
        return;
      case TrackerKind::kRescan:
        rect_ = img::bounding_rect_of(image, keep, &counters.rect_scanned);
        return;
    }
  }

 private:
  TrackerKind kind_;
  img::Rect rect_ = img::kEmptyRect;
};

}  // namespace slspvr::core
