// Per-rank engine context: explicit configuration + worker pool + scratch.
//
// A rank used to be exactly one thread, and the engine's scratch arenas were
// thread_local on the strength of that invariant; the tile-parallel engine
// then kept its knobs (workers-per-rank, fused decode) in process globals.
// Both break down the moment two frames composite concurrently in one
// process — the frames race on configuration and share scratch. This header
// replaces them with explicit state:
//
//  * EngineConfig — the per-frame engine knobs, plain data, no globals;
//  * EngineContext — one rank's engine instance: the config, a WorkerPool
//    sized to it, and one EngineScratch per worker. plan_composite takes a
//    context and guards it against concurrent use, so two frames sharing a
//    context is a hard error instead of a data race;
//  * EngineArena — a pool of per-rank contexts reused across the frames of
//    one session (scratch capacity survives between frames; trim() bounds
//    the carryover when frame sizes shrink).
//
// workers_per_rank == 1 (the default) spawns no threads and runs every task
// inline, byte- and schedule-identical to the historical single-thread
// engine; larger counts only change who executes which rows, never the
// arithmetic or its order within a pixel.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

#include "image/image.hpp"
#include "image/pack.hpp"
#include "image/pixel.hpp"

namespace slspvr::core {

/// Explicit per-worker scratch, replacing the engine's old thread_local
/// arenas. Worker 0's `pack` and `frame` are the rank-level arenas (the
/// send-buffer arena and the depth-order ping-pong frame); every worker's
/// staging vectors back the strided gather/blend/scatter bands and the
/// misaligned-payload bounce copies of the streaming decode path.
struct EngineScratch {
  img::PackBuffer pack;                  ///< send-buffer arena (worker 0)
  img::Image frame;                      ///< depth-order scratch frame (worker 0)
  std::vector<img::Pixel> staging;       ///< strided gather/blend staging
  std::vector<img::Pixel> staging2;      ///< second gather operand
  std::vector<img::Pixel> bounce;        ///< misaligned wire-pixel bounce
  std::vector<std::uint16_t> code_bounce;  ///< misaligned wire-code bounce
  std::vector<img::Pixel> soa_a, soa_b;  ///< BSLC SoA progression ping-pong
};

/// Fork/join pool of `workers` lanes. The constructing thread participates
/// as worker 0 in every run() call; `workers - 1` helper threads are spawned
/// up front and parked on a condition variable between tasks, so per-stage
/// fan-out costs a wakeup, not a thread spawn. Exceptions thrown by any
/// worker (e.g. img::DecodeError from a band decode) are captured and the
/// first one rethrown from run() on the caller.
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(scratch_.size()); }

  /// Run fn(worker_index) once per worker, in parallel, and join. The
  /// caller executes index 0. Not reentrant (the engine never nests bands).
  void run(const std::function<void(int)>& fn);

  [[nodiscard]] EngineScratch& scratch(int worker) {
    return scratch_[static_cast<std::size_t>(worker)];
  }

 private:
  void worker_loop(int index);

  std::vector<EngineScratch> scratch_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Per-frame engine knobs, threaded explicitly from the caller down through
/// plan_composite and the codec DecodeSink — never read from process state.
struct EngineConfig {
  /// Intra-rank worker lanes (1 = the historical one-thread-per-rank
  /// engine; values < 1 are clamped to 1 by EngineContext).
  int workers_per_rank = 1;
  /// Fused decode→composite streaming path (default on). Off restores the
  /// historical unpack-then-blend decode — byte-identical output either
  /// way; slspvr-perf benches both.
  bool fused_decode = true;
};

/// One rank's engine instance: immutable config, a WorkerPool sized to it,
/// and the per-worker scratch the pool owns. Exactly one frame may use a
/// context at a time — plan_composite acquires the context for the duration
/// of the stage loop and throws if it is already held, so the concurrency
/// bug the old process globals allowed is a deterministic error now.
class EngineContext {
 public:
  explicit EngineContext(const EngineConfig& config = {})
      : config_{config.workers_per_rank < 1 ? 1 : config.workers_per_rank,
                config.fused_decode},
        pool_(config_.workers_per_rank) {}
  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] WorkerPool& pool() noexcept { return pool_; }
  [[nodiscard]] int workers() const noexcept { return config_.workers_per_rank; }
  [[nodiscard]] EngineScratch& scratch(int worker) { return pool_.scratch(worker); }

  /// The rank's depth-order scratch frame (worker 0's arena): reused when
  /// the dimensions match (blanked with the vectorized fill), reallocated
  /// otherwise. The engine swaps it with the rank's frame at stage end, so
  /// consecutive stages ping-pong two long-lived allocations.
  [[nodiscard]] img::Image& scratch_frame(int width, int height);

  /// Bytes currently held across every worker's scratch buffers (capacity,
  /// not size) — what a session's arena accounting reports.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept;

  /// Shrink-or-reset: release any scratch buffer whose capacity exceeds
  /// what a `max_pixels`-pixel frame can need; smaller buffers are kept.
  /// Sessions call this when their frame size shrinks, so a 768² frame's
  /// arenas are not carried (and reported) under a 384² workload.
  void trim(std::int64_t max_pixels);

  /// Scoped exclusive use. Throws std::logic_error if the context is
  /// already held by another frame — the assert-no-concurrent-use guard.
  class UseGuard {
   public:
    explicit UseGuard(EngineContext& ctx);
    ~UseGuard();
    UseGuard(const UseGuard&) = delete;
    UseGuard& operator=(const UseGuard&) = delete;

   private:
    EngineContext& ctx_;
  };

 private:
  EngineConfig config_;
  WorkerPool pool_;
  std::atomic<bool> in_use_{false};
};

/// A session's pool of per-rank engine contexts, reused frame to frame so
/// scratch capacity amortizes across a frame sequence. Grow with require()
/// on the submitting thread *before* rank threads spawn; rank r then draws
/// context(r) with no synchronization.
class EngineArena {
 public:
  explicit EngineArena(const EngineConfig& config = {}, int ranks = 0) : config_(config) {
    require(ranks);
  }

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(contexts_.size()); }

  /// Ensure at least `ranks` contexts exist (existing ones are kept).
  void require(int ranks) {
    while (static_cast<int>(contexts_.size()) < ranks) {
      contexts_.push_back(std::make_unique<EngineContext>(config_));
    }
  }

  [[nodiscard]] EngineContext& context(int rank) {
    return *contexts_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] std::size_t scratch_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& ctx : contexts_) total += ctx->scratch_bytes();
    return total;
  }

  void trim(std::int64_t max_pixels) {
    for (const auto& ctx : contexts_) ctx->trim(max_pixels);
  }

 private:
  EngineConfig config_;
  std::vector<std::unique_ptr<EngineContext>> contexts_;
};

/// Ceil-partition [0, n) into `parts` blocks; block j is [first, last).
struct ChunkBounds {
  std::int64_t first = 0;
  std::int64_t last = 0;
  [[nodiscard]] std::int64_t count() const noexcept { return last - first; }
};
[[nodiscard]] ChunkBounds chunk_bounds(std::int64_t n, int parts, int j) noexcept;

}  // namespace slspvr::core
