// Per-rank worker pool: intra-rank tile/row parallelism for the engine.
//
// A rank used to be exactly one thread, and the engine's scratch arenas were
// thread_local on the strength of that invariant. The tile-parallel engine
// replaces it: each rank owns a WorkerPool of `workers_per_rank()` workers
// (the rank's own PE thread acts as worker 0; the pool spawns the rest) and
// every band-parallel step — streaming decode, blending, compaction — fans
// out across them. Scratch is therefore *explicit*: one EngineScratch per
// worker, owned by the pool, handed out by index. workers_per_rank() == 1
// (the default) spawns no threads and runs every task inline, byte- and
// schedule-identical to the historical single-thread engine; larger counts
// only change who executes which rows, never the arithmetic or its order
// within a pixel, so frames stay byte-identical for any worker count.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

#include "image/image.hpp"
#include "image/pack.hpp"
#include "image/pixel.hpp"

namespace slspvr::core {

/// Explicit per-worker scratch, replacing the engine's old thread_local
/// arenas. Worker 0's `pack` and `frame` are the rank-level arenas (the
/// send-buffer arena and the depth-order ping-pong frame); every worker's
/// staging vectors back the strided gather/blend/scatter bands and the
/// misaligned-payload bounce copies of the streaming decode path.
struct EngineScratch {
  img::PackBuffer pack;                  ///< send-buffer arena (worker 0)
  img::Image frame;                      ///< depth-order scratch frame (worker 0)
  std::vector<img::Pixel> staging;       ///< strided gather/blend staging
  std::vector<img::Pixel> staging2;      ///< second gather operand
  std::vector<img::Pixel> bounce;        ///< misaligned wire-pixel bounce
  std::vector<std::uint16_t> code_bounce;  ///< misaligned wire-code bounce
  std::vector<img::Pixel> soa_a, soa_b;  ///< BSLC SoA progression ping-pong
};

/// Fork/join pool of `workers` lanes. The constructing thread participates
/// as worker 0 in every run() call; `workers - 1` helper threads are spawned
/// up front and parked on a condition variable between tasks, so per-stage
/// fan-out costs a wakeup, not a thread spawn. Exceptions thrown by any
/// worker (e.g. img::DecodeError from a band decode) are captured and the
/// first one rethrown from run() on the caller.
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(scratch_.size()); }

  /// Run fn(worker_index) once per worker, in parallel, and join. The
  /// caller executes index 0. Not reentrant (the engine never nests bands).
  void run(const std::function<void(int)>& fn);

  [[nodiscard]] EngineScratch& scratch(int worker) {
    return scratch_[static_cast<std::size_t>(worker)];
  }

  /// The calling PE thread's pool, sized to the current workers_per_rank()
  /// setting (recreated when the setting changes between frames). Each rank
  /// thread of a run gets its own pool; the pool and its scratch die with
  /// the thread.
  [[nodiscard]] static WorkerPool& for_this_rank();

 private:
  void worker_loop(int index);

  std::vector<EngineScratch> scratch_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Process-global intra-rank worker count (default 1 = the historical
/// one-thread-per-rank engine). Read by plan_composite at each frame; set
/// before the run (the multi-process backend inherits it across fork, and
/// ProcOptions::workers_per_rank pins it explicitly in each worker).
[[nodiscard]] int workers_per_rank() noexcept;
void set_workers_per_rank(int workers) noexcept;

/// Process-global toggle for the fused decode→composite streaming path
/// (default on). Off restores the historical unpack-then-blend decode —
/// byte-identical output either way; slspvr-perf benches both.
[[nodiscard]] bool fused_decode() noexcept;
void set_fused_decode(bool on) noexcept;

/// Ceil-partition [0, n) into `parts` blocks; block j is [first, last).
struct ChunkBounds {
  std::int64_t first = 0;
  std::int64_t last = 0;
  [[nodiscard]] std::int64_t count() const noexcept { return last - first; }
};
[[nodiscard]] ChunkBounds chunk_bounds(std::int64_t n, int parts, int j) noexcept;

}  // namespace slspvr::core
