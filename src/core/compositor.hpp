// Compositor interface: the contract every compositing method implements.
#pragma once

#include <optional>
#include <string_view>

#include "check/schedule.hpp"
#include "core/counters.hpp"
#include "core/order.hpp"
#include "core/plan.hpp"
#include "image/image.hpp"
#include "image/interleave.hpp"
#include "mp/communicator.hpp"

namespace slspvr::core {

class EngineContext;  // core/worker_pool.hpp

/// What a rank owns when its compositing phase finishes.
struct Ownership {
  enum class Kind {
    kRect,         ///< a contiguous screen rectangle (BS/BSBR/BSBRC/pipeline)
    kInterleaved,  ///< an interleaved pixel progression (BSLC)
    kFullAtRoot,   ///< rank 0 holds the entire image, others nothing (tree)
  };

  Kind kind = Kind::kRect;
  img::Rect rect;                ///< valid when kind == kRect
  img::InterleavedRange range;   ///< valid when kind == kInterleaved

  [[nodiscard]] static Ownership full_rect(const img::Rect& r) {
    return Ownership{Kind::kRect, r, {}};
  }
  [[nodiscard]] static Ownership interleaved(const img::InterleavedRange& r) {
    return Ownership{Kind::kInterleaved, {}, r};
  }
  [[nodiscard]] static Ownership full_at_root() {
    return Ownership{Kind::kFullAtRoot, {}, {}};
  }
};

/// A compositing method. `composite` runs SPMD on every rank: `image` enters
/// as the rank's rendered full-frame subimage and leaves holding the rank's
/// share of the fully composited image, described by the returned Ownership.
///
/// Implementations must:
///  * call comm.set_stage(k) with k = 1..#stages before each exchange so the
///    traffic trace attributes bytes to compositing stages (stage 0 is
///    reserved for out-of-phase traffic, e.g. the final gather);
///  * respect the front/back decisions in `order`;
///  * account every over/encode/scan operation in `counters`;
///  * take every engine knob (worker fan-out, fused decode, scratch) from
///    `engine` — there is no process-global engine state, so concurrent
///    frames in one process are correct as long as each passes its own
///    context (EngineArena pools per-rank contexts across a session).
class Compositor {
 public:
  virtual ~Compositor() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                              Counters& counters, EngineContext& engine) const = 0;

  /// Convenience overload: run with a one-shot default engine context
  /// (single worker, fused decode) constructed for this call — the
  /// historical single-thread behaviour, byte-identical by construction.
  Ownership composite(mp::Comm& comm, img::Image& image, const SwapOrder& order,
                      Counters& counters) const;

  /// The method's static communication schedule for `ranks` PEs: the exact
  /// per-rank send/recv/stage program `composite` will execute, with
  /// symbolic worst-case payload bounds. Ring-structured methods (pipeline)
  /// emit the identity depth order; any other order is the same pattern
  /// with ranks relabelled. slspvr-check proves deadlock-freedom, matching
  /// and tag uniqueness on this schedule before any frame is rendered.
  [[nodiscard]] virtual check::CommSchedule schedule(int ranks) const = 0;

  /// The balanced rect ExchangePlan this method executes for `ranks` PEs,
  /// when it has one — the handle mid-frame repair needs to replay the
  /// protocol state (plan_epoch_state) and re-plan the rest over survivors
  /// (repair_plan). Methods without per-rank rectangle state (scalar
  /// interleave, banded direct send, tree, pipeline) return nullopt and
  /// fall back to the legacy degrade-and-restart recovery.
  [[nodiscard]] virtual std::optional<ExchangePlan> resume_plan(int /*ranks*/) const {
    return std::nullopt;
  }
};

/// Assemble the final image at `root` from each rank's owned piece. Traffic
/// is tagged stage 0 (outside the measured compositing phase, matching the
/// paper, which times compositing up to the point the full image exists
/// distributed across PEs).
[[nodiscard]] img::Image gather_final(mp::Comm& comm, const img::Image& local,
                                      const Ownership& ownership, int root = 0);

}  // namespace slspvr::core
