#include "check/verify.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>

namespace slspvr::check {

namespace {

using Channel = std::tuple<int, int, int>;  // (source, dest, tag)

std::string channel_str(const Channel& c) {
  return std::to_string(std::get<0>(c)) + " -> " + std::to_string(std::get<1>(c)) +
         " tag " + std::to_string(std::get<2>(c));
}

/// Validate event shapes: peers in range, no self-messages, no reserved
/// (negative) user tags — the runtime keeps negatives for its own barriers.
void check_structure(const CommSchedule& s, std::vector<Diagnostic>& errors) {
  for (int r = 0; r < s.ranks; ++r) {
    for (const ScheduleEvent& e : s.per_rank[static_cast<std::size_t>(r)]) {
      if (e.kind == EventKind::kBarrier) continue;
      if (e.peer < 0 || e.peer >= s.ranks) {
        errors.push_back({Diagnostic::Code::kBadEvent, r, e.peer, e.tag, e.stage,
                          "rank " + std::to_string(r) + ": peer " + std::to_string(e.peer) +
                              " out of range [0," + std::to_string(s.ranks) + ")"});
      } else if (e.peer == r) {
        errors.push_back({Diagnostic::Code::kBadEvent, r, e.peer, e.tag, e.stage,
                          "rank " + std::to_string(r) + ": self-message (tag " +
                              std::to_string(e.tag) + ")"});
      }
      if (e.tag < 0) {
        errors.push_back({Diagnostic::Code::kBadEvent, r, e.peer, e.tag, e.stage,
                          "rank " + std::to_string(r) + ": negative tag " +
                              std::to_string(e.tag) + " is reserved for the runtime"});
      }
    }
  }
}

/// Per-channel send/recv multiset matching.
void check_matching(const CommSchedule& s, std::vector<Diagnostic>& errors) {
  std::map<Channel, std::int64_t> balance;  // sends minus recvs
  for (int r = 0; r < s.ranks; ++r) {
    for (const ScheduleEvent& e : s.per_rank[static_cast<std::size_t>(r)]) {
      if (e.peer < 0 || e.peer >= s.ranks || e.peer == r) continue;  // kBadEvent already
      if (e.kind == EventKind::kSend) ++balance[{r, e.peer, e.tag}];
      if (e.kind == EventKind::kRecv) --balance[{e.peer, r, e.tag}];
    }
  }
  for (const auto& [channel, diff] : balance) {
    if (diff > 0) {
      errors.push_back({Diagnostic::Code::kUnmatchedSend, std::get<0>(channel),
                        std::get<1>(channel), std::get<2>(channel), 0,
                        "channel " + channel_str(channel) + ": " + std::to_string(diff) +
                            " message(s) sent but never received"});
    } else if (diff < 0) {
      errors.push_back({Diagnostic::Code::kUnmatchedRecv, std::get<1>(channel),
                        std::get<0>(channel), std::get<2>(channel), 0,
                        "channel " + channel_str(channel) + ": " + std::to_string(-diff) +
                            " receive(s) with no matching send"});
    }
  }
}

/// Binary-swap-family promise: every stage's sends pair ranks symmetrically.
void check_pairwise(const CommSchedule& s, std::vector<Diagnostic>& errors) {
  std::map<int, std::map<std::tuple<int, int, int>, int>> stages;  // stage -> (a,b,tag) -> count
  for (int r = 0; r < s.ranks; ++r) {
    for (const ScheduleEvent& e : s.per_rank[static_cast<std::size_t>(r)]) {
      if (e.kind != EventKind::kSend || e.stage == 0) continue;
      ++stages[e.stage][{r, e.peer, e.tag}];
    }
  }
  for (const auto& [stage, sends] : stages) {
    for (const auto& [key, count] : sends) {
      const auto [a, b, tag] = key;
      const auto mirror = sends.find({b, a, tag});
      const int mirrored = mirror == sends.end() ? 0 : mirror->second;
      if (mirrored != count) {
        errors.push_back({Diagnostic::Code::kAsymmetry, a, b, tag, stage,
                          "stage " + std::to_string(stage) + ": rank " + std::to_string(a) +
                              " sends to " + std::to_string(b) + " (tag " + std::to_string(tag) +
                              ") " + std::to_string(count) + "x but the reverse happens " +
                              std::to_string(mirrored) + "x"});
      }
    }
  }
}

struct PendingMessage {
  int stage = 0;
};

/// Execute the schedule with eager (buffered) sends and blocking receives.
/// Detects concurrent same-channel messages (tag collisions) on deposit and
/// extracts the wait-for cycle when no rank can make progress.
void simulate(const CommSchedule& s, std::vector<Diagnostic>& errors) {
  const std::size_t ranks = static_cast<std::size_t>(s.ranks);
  std::vector<std::size_t> pc(ranks, 0);
  std::map<Channel, std::deque<PendingMessage>> in_flight;

  const auto done = [&](std::size_t r) { return pc[r] >= s.per_rank[r].size(); };
  const auto at_barrier = [&](std::size_t r) {
    return !done(r) && s.per_rank[r][pc[r]].kind == EventKind::kBarrier;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    // Barriers: release only when every unfinished rank has arrived.
    bool all_at_barrier = false;
    for (std::size_t r = 0; r < ranks; ++r) {
      if (at_barrier(r)) all_at_barrier = true;
    }
    if (all_at_barrier) {
      bool everyone = true;
      for (std::size_t r = 0; r < ranks; ++r) {
        if (!done(r) && !at_barrier(r)) everyone = false;
      }
      if (everyone) {
        for (std::size_t r = 0; r < ranks; ++r) {
          if (at_barrier(r)) ++pc[r];
        }
        progress = true;
        continue;
      }
    }
    for (std::size_t r = 0; r < ranks; ++r) {
      while (!done(r)) {
        const ScheduleEvent& e = s.per_rank[r][pc[r]];
        if (e.kind == EventKind::kSend) {
          if (e.peer < 0 || e.peer >= s.ranks || e.peer == static_cast<int>(r)) {
            ++pc[r];  // malformed, already diagnosed; skip so the sim terminates
            continue;
          }
          auto& queue = in_flight[{static_cast<int>(r), e.peer, e.tag}];
          if (!queue.empty()) {
            errors.push_back(
                {Diagnostic::Code::kTagCollision, static_cast<int>(r), e.peer, e.tag, e.stage,
                 "channel " + std::to_string(r) + " -> " + std::to_string(e.peer) + " tag " +
                     std::to_string(e.tag) + ": message of stage " + std::to_string(e.stage) +
                     " deposited while the stage-" + std::to_string(queue.front().stage) +
                     " message is still in flight — (source, tag) matching is ambiguous"});
          }
          queue.push_back({e.stage});
          ++pc[r];
          progress = true;
        } else if (e.kind == EventKind::kRecv) {
          if (e.peer < 0 || e.peer >= s.ranks || e.peer == static_cast<int>(r)) {
            ++pc[r];
            continue;
          }
          auto& queue = in_flight[{e.peer, static_cast<int>(r), e.tag}];
          if (queue.empty()) break;  // blocked
          queue.pop_front();
          ++pc[r];
          progress = true;
        } else {
          break;  // barrier: handled at the top of the pass
        }
      }
    }
  }

  bool any_blocked = false;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (!done(r)) any_blocked = true;
  }
  if (!any_blocked) return;

  // Wait-for graph over the blocked ranks; walk the single-successor recv
  // edges from each blocked rank to find a cycle.
  std::vector<int> waits_on(ranks, -1);
  for (std::size_t r = 0; r < ranks; ++r) {
    if (done(r)) continue;
    const ScheduleEvent& e = s.per_rank[r][pc[r]];
    if (e.kind == EventKind::kRecv) waits_on[r] = e.peer;
  }
  std::vector<int> state(ranks, 0);  // 0 unvisited, 1 on path, 2 finished
  bool cycle_reported = false;
  for (std::size_t start = 0; start < ranks && !cycle_reported; ++start) {
    if (state[start] != 0 || waits_on[start] < 0) continue;
    std::vector<int> path;
    int cur = static_cast<int>(start);
    while (cur >= 0 && state[static_cast<std::size_t>(cur)] == 0) {
      state[static_cast<std::size_t>(cur)] = 1;
      path.push_back(cur);
      cur = waits_on[static_cast<std::size_t>(cur)];
    }
    if (cur >= 0 && state[static_cast<std::size_t>(cur)] == 1) {
      // Found a cycle: report it from `cur` around.
      std::ostringstream out;
      out << "cyclic wait: ";
      const auto begin = std::find(path.begin(), path.end(), cur);
      for (auto it = begin; it != path.end(); ++it) {
        const ScheduleEvent& e =
            s.per_rank[static_cast<std::size_t>(*it)][pc[static_cast<std::size_t>(*it)]];
        out << "rank " << *it << " waits on rank " << e.peer << " (recv tag " << e.tag
            << ", stage " << e.stage << ") -> ";
      }
      out << "rank " << cur;
      const ScheduleEvent& e =
          s.per_rank[static_cast<std::size_t>(cur)][pc[static_cast<std::size_t>(cur)]];
      errors.push_back({Diagnostic::Code::kDeadlock, cur, e.peer, e.tag, e.stage, out.str()});
      cycle_reported = true;
    }
    for (const int r : path) state[static_cast<std::size_t>(r)] = 2;
  }
  if (!cycle_reported) {
    for (std::size_t r = 0; r < ranks; ++r) {
      if (done(r)) continue;
      const ScheduleEvent& e = s.per_rank[r][pc[r]];
      const std::string what =
          e.kind == EventKind::kRecv
              ? "recv from rank " + std::to_string(e.peer) + " tag " + std::to_string(e.tag)
              : "barrier";
      errors.push_back({Diagnostic::Code::kStuck, static_cast<int>(r), e.peer, e.tag, e.stage,
                        "rank " + std::to_string(r) + " blocks forever on " + what +
                            " at stage " + std::to_string(e.stage) +
                            " (event " + std::to_string(pc[r]) + ")"});
    }
  }
}

}  // namespace

std::string_view diagnostic_code_name(Diagnostic::Code code) {
  switch (code) {
    case Diagnostic::Code::kBadEvent: return "bad-event";
    case Diagnostic::Code::kUnmatchedSend: return "unmatched-send";
    case Diagnostic::Code::kUnmatchedRecv: return "unmatched-recv";
    case Diagnostic::Code::kTagCollision: return "tag-collision";
    case Diagnostic::Code::kDeadlock: return "deadlock";
    case Diagnostic::Code::kStuck: return "stuck";
    case Diagnostic::Code::kAsymmetry: return "asymmetry";
    case Diagnostic::Code::kRace: return "race";
    case Diagnostic::Code::kInvariant: return "invariant";
    case Diagnostic::Code::kLivelock: return "livelock";
  }
  return "?";
}

bool VerifyResult::has(Diagnostic::Code code) const {
  return std::any_of(errors.begin(), errors.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

std::string VerifyResult::summary() const {
  if (errors.empty()) return "ok";
  std::ostringstream out;
  for (const Diagnostic& d : errors) {
    out << "[" << diagnostic_code_name(d.code) << "] " << d.message << "\n";
  }
  return out.str();
}

VerifyResult verify_schedule(const CommSchedule& schedule) {
  VerifyResult result;
  if (schedule.ranks <= 0 ||
      schedule.per_rank.size() != static_cast<std::size_t>(schedule.ranks)) {
    result.errors.push_back({Diagnostic::Code::kBadEvent, -1, -1, 0, 0,
                             "schedule has " + std::to_string(schedule.per_rank.size()) +
                                 " rank programs but declares ranks=" +
                                 std::to_string(schedule.ranks)});
    return result;
  }
  check_structure(schedule, result.errors);
  check_matching(schedule, result.errors);
  if (schedule.pairwise) check_pairwise(schedule, result.errors);
  simulate(schedule, result.errors);
  return result;
}

namespace {

/// Linear form c_full + c_rect*beta + c_nb*gamma over the payload-fraction
/// unknowns (beta = bounding-rect fraction, gamma = non-blank fraction).
struct PayloadForm {
  Rational full{0, 1}, rect{0, 1}, nb{0, 1};

  [[nodiscard]] Rational at(bool beta, bool gamma) const {
    Rational v = full;
    if (beta) v = v + rect;
    if (gamma) v = v + nb;
    return v;
  }
  [[nodiscard]] std::string str() const {
    return full.str() + "*A + " + rect.str() + "*beta*A + " + nb.str() + "*gamma*A";
  }
};

/// Worst-case payload received per rank (in pixels, as fractions of A),
/// plus the total fixed overhead bytes the form excludes.
struct MethodForm {
  std::vector<PayloadForm> per_rank;
  std::int64_t max_fixed_bytes = 0;
  [[nodiscard]] Rational max_at(bool beta, bool gamma) const {
    Rational best{0, 1};
    for (const PayloadForm& f : per_rank) {
      const Rational v = f.at(beta, gamma);
      if (best < v) best = v;
    }
    return best;
  }
};

MethodForm received_payload_form(const CommSchedule& s) {
  MethodForm form;
  form.per_rank.resize(static_cast<std::size_t>(s.ranks));
  // Match the i-th recv on a channel to the i-th send (FIFO), then charge
  // the send's symbolic bound to the *receiver*.
  std::map<Channel, std::deque<const SizeBound*>> sends;
  for (int r = 0; r < s.ranks; ++r) {
    for (const ScheduleEvent& e : s.per_rank[static_cast<std::size_t>(r)]) {
      if (e.kind == EventKind::kSend && e.stage != 0) {
        sends[{r, e.peer, e.tag}].push_back(&e.bound);
      }
    }
  }
  std::vector<std::int64_t> fixed(static_cast<std::size_t>(s.ranks), 0);
  for (int r = 0; r < s.ranks; ++r) {
    for (const ScheduleEvent& e : s.per_rank[static_cast<std::size_t>(r)]) {
      if (e.kind != EventKind::kRecv || e.stage == 0) continue;
      auto& queue = sends[{e.peer, r, e.tag}];
      if (queue.empty()) continue;  // unmatched; verify_schedule reports it
      const SizeBound* bound = queue.front();
      queue.pop_front();
      PayloadForm& f = form.per_rank[static_cast<std::size_t>(r)];
      const Rational area = bound->region.area_fraction();
      switch (bound->payload) {
        case PayloadClass::kFullRegion: f.full = f.full + area; break;
        case PayloadClass::kBoundingRect: f.rect = f.rect + area; break;
        case PayloadClass::kNonBlank: f.nb = f.nb + area; break;
        case PayloadClass::kNone: break;
      }
      fixed[static_cast<std::size_t>(r)] += bound->fixed_bytes;
    }
  }
  form.max_fixed_bytes = *std::max_element(fixed.begin(), fixed.end());
  return form;
}

}  // namespace

Eq9Report verify_eq9(const CommSchedule& bs, const CommSchedule& bsbr,
                     const CommSchedule& bsbrc, const CommSchedule& bslc) {
  const CommSchedule* chain[4] = {&bs, &bsbr, &bsbrc, &bslc};
  MethodForm forms[4];
  for (int i = 0; i < 4; ++i) forms[i] = received_payload_form(*chain[i]);

  // The domain {1 >= beta >= gamma >= 0} is the triangle with vertices
  // (0,0), (1,0), (1,1); a linear form is >= another everywhere iff it is
  // at all three vertices.
  constexpr bool kVertices[3][2] = {{false, false}, {true, false}, {true, true}};
  std::ostringstream detail;
  bool holds = true;
  for (int i = 0; i < 4; ++i) {
    detail << chain[i]->method << ": max received payload (pixels) = "
           << forms[i].per_rank.front().str()
           << "; excluded fixed overhead <= " << forms[i].max_fixed_bytes << " bytes\n";
  }
  for (int i = 0; i + 1 < 4; ++i) {
    for (const auto& v : kVertices) {
      const Rational lhs = forms[i].max_at(v[0], v[1]);
      const Rational rhs = forms[i + 1].max_at(v[0], v[1]);
      if (lhs < rhs) {
        holds = false;
        detail << "VIOLATION: M_" << chain[i]->method << " < M_" << chain[i + 1]->method
               << " at (beta=" << v[0] << ", gamma=" << v[1] << "): " << lhs.str() << " < "
               << rhs.str() << "\n";
      }
    }
  }
  if (holds) {
    detail << "Eq. (9) chain M_" << bs.method << " >= M_" << bsbr.method << " >= M_"
           << bsbrc.method << " >= M_" << bslc.method
           << " holds at every vertex of {1 >= beta >= gamma >= 0}\n";
  }
  return Eq9Report{holds, detail.str()};
}

}  // namespace slspvr::check
