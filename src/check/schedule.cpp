#include "check/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace slspvr::check {

namespace {

[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Worst rectangle area reachable by `halvings` centerline splits of w x h.
/// split_centerline halves the longer side with ceil rounding; the larger
/// half can exceed the nominal area/2, so enumerate both split choices and
/// keep the maximum — a safe upper bound for every rank's actual region.
[[nodiscard]] std::int64_t max_halved_rect(std::int64_t w, std::int64_t h, int halvings) {
  if (halvings == 0) return w * h;
  const std::int64_t via_w = max_halved_rect(ceil_div(w, 2), h, halvings - 1);
  const std::int64_t via_h = max_halved_rect(w, ceil_div(h, 2), halvings - 1);
  return std::max(via_w, via_h);
}

/// Mixed-radix analogue of max_halved_rect: at every stage the engine
/// slices the longer side into radices[i] parts with ceil boundaries, so
/// a part spans at most ceil(side / radix); enumerate which side each cut
/// lands on and keep the maximum area.
[[nodiscard]] std::int64_t max_sliced_rect(std::int64_t w, std::int64_t h,
                                           const std::vector<int>& radices,
                                           std::size_t from) {
  if (from >= radices.size()) return w * h;
  const std::int64_t k = radices[from];
  const std::int64_t via_w = max_sliced_rect(ceil_div(w, k), h, radices, from + 1);
  const std::int64_t via_h = max_sliced_rect(w, ceil_div(h, k), radices, from + 1);
  return std::max(via_w, via_h);
}

}  // namespace

Rational Rational::of(std::int64_t n, std::int64_t d) {
  if (d == 0) throw std::invalid_argument("Rational: zero denominator");
  if (d < 0) {
    n = -n;
    d = -d;
  }
  const std::int64_t g = std::gcd(n < 0 ? -n : n, d);
  return Rational{g == 0 ? n : n / g, g == 0 ? d : d / g};
}

Rational operator+(Rational a, Rational b) {
  return Rational::of(a.num * b.den + b.num * a.den, a.den * b.den);
}

Rational operator*(Rational a, Rational b) { return Rational::of(a.num * b.num, a.den * b.den); }

bool operator==(const Rational& a, const Rational& b) {
  return a.num * b.den == b.num * a.den;
}

bool Rational::operator<(const Rational& other) const {
  return num * other.den < other.num * den;
}

bool Rational::operator<=(const Rational& other) const {
  return num * other.den <= other.num * den;
}

std::string Rational::str() const {
  if (den == 1) return std::to_string(num);
  return std::to_string(num) + "/" + std::to_string(den);
}

Rational RegionSpec::area_fraction() const {
  std::int64_t parts = std::int64_t{1} << halvings;
  for (const int k : radices) parts *= k;
  return Rational::of(1, parts * bands);
}

std::string_view payload_class_name(PayloadClass c) {
  switch (c) {
    case PayloadClass::kNone: return "none";
    case PayloadClass::kNonBlank: return "non-blank";
    case PayloadClass::kBoundingRect: return "bounding-rect";
    case PayloadClass::kFullRegion: return "full-region";
  }
  return "?";
}

std::int64_t max_region_pixels(const RegionSpec& region, int width, int height) {
  const std::int64_t w = width;
  const std::int64_t h = height;
  if (region.scalar) {
    // Interleaved progressions split pixel *counts*: each stage keeps at
    // most ceil(count / radix) elements, so the stages compose to iterated
    // ceil divisions (halvings are just radix-2 stages).
    std::int64_t count = ceil_div(w * h, std::int64_t{1} << region.halvings);
    for (const int k : region.radices) count = ceil_div(count, k);
    if (region.bands > 1) count = ceil_div(count, region.bands);
    return count;
  }
  std::int64_t area = max_halved_rect(w, h, region.halvings);
  if (!region.radices.empty()) {
    area = max_sliced_rect(w, h, region.radices, 0);
  }
  if (region.bands > 1) {
    // Horizontal bands of the (possibly halved) region: band_of uses floor
    // ratios, so a band spans at most ceil(h/bands) + 1 rows; stay safe.
    area = (ceil_div(h, region.bands) + 1) * w;
  }
  return area;
}

std::int64_t max_region_rows(const RegionSpec& region, int height) {
  if (region.scalar) return 0;
  if (region.bands > 1) return ceil_div(height, region.bands) + 1;
  // Mixed-radix slices may always cut the width, so the row bound stays H
  // (same as the halvings case).
  return height;
}

std::uint64_t max_message_bytes(const SizeBound& bound, int width, int height) {
  if (bound.payload == PayloadClass::kNone) {
    return static_cast<std::uint64_t>(bound.fixed_bytes);
  }
  const std::int64_t pixels = max_region_pixels(bound.region, width, height);
  const std::int64_t rows = max_region_rows(bound.region, height);
  return static_cast<std::uint64_t>(bound.fixed_bytes + bound.per_pixel_bytes * pixels +
                                    bound.per_row_bytes * rows);
}

CommSchedule fold_schedule(std::string_view method, int ranks, const CommSchedule& inner) {
  if (ranks <= 0) throw std::invalid_argument("fold_schedule: ranks must be positive");
  // Mirror core::make_fold_plan: Q = largest power of two <= P, groups of
  // 1-2 consecutive ranks, the group's first rank leads.
  int groups = 1;
  while (groups * 2 <= ranks) groups *= 2;
  if (inner.ranks != groups) {
    throw std::invalid_argument("fold_schedule: inner schedule has " +
                                std::to_string(inner.ranks) + " ranks, want " +
                                std::to_string(groups));
  }
  const auto group_start = [&](int g) {
    return static_cast<int>(static_cast<std::int64_t>(ranks) * g / groups);
  };

  CommSchedule s;
  s.method = method;
  s.ranks = ranks;
  s.pairwise = false;  // the pre-stage fold messages are one-directional
  s.per_rank.resize(static_cast<std::size_t>(ranks));
  s.final_gather.assign(static_cast<std::size_t>(ranks),
                        SizeBound{PayloadClass::kNone, RegionSpec{}, 64, 0});
  // BSBRC-style whole-frame ship: rect header + RLE codes + non-blank pixels.
  const SizeBound pre_bound{PayloadClass::kNonBlank, RegionSpec{0, 1, false, {}}, 12, 18};

  for (int g = 0; g < groups; ++g) {
    const int leader = group_start(g);
    auto& leader_events = s.per_rank[static_cast<std::size_t>(leader)];
    for (int member = leader + 1; member < group_start(g + 1); ++member) {
      s.per_rank[static_cast<std::size_t>(member)].push_back(
          {EventKind::kSend, leader, kFoldTag, 1, pre_bound});
      leader_events.push_back({EventKind::kRecv, member, kFoldTag, 1, {}});
    }
    // Relabel the inner method's program onto the leader's world rank.
    for (const ScheduleEvent& e : inner.per_rank[static_cast<std::size_t>(g)]) {
      ScheduleEvent world = e;
      if (e.peer >= 0) world.peer = group_start(e.peer);
      leader_events.push_back(world);
    }
    if (!inner.final_gather.empty()) {
      s.final_gather[static_cast<std::size_t>(leader)] =
          inner.final_gather[static_cast<std::size_t>(g)];
    }
  }
  return s;
}

void append_final_gather(CommSchedule& schedule, int root) {
  if (schedule.final_gather.size() != static_cast<std::size_t>(schedule.ranks)) {
    throw std::invalid_argument("append_final_gather: schedule has no final_gather bounds");
  }
  for (int r = 0; r < schedule.ranks; ++r) {
    if (r == root) continue;
    schedule.per_rank[static_cast<std::size_t>(r)].push_back(
        {EventKind::kSend, root, kGatherTag, 0, schedule.final_gather[static_cast<std::size_t>(r)]});
    schedule.per_rank[static_cast<std::size_t>(root)].push_back(
        {EventKind::kRecv, r, kGatherTag, 0, {}});
  }
}

}  // namespace slspvr::check
