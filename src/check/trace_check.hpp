// Dynamic happens-before checking: validate an observed TrafficTrace
// against the vector clocks stamped by the mp runtime and against the
// method's static CommSchedule.
//
// This is the "did the run actually follow the proven schedule" half of
// slspvr-check, and a lightweight race detector tuned to the mailbox
// protocol (complementing TSan, which sees the locks but not the protocol):
//   * every receive must causally follow its matching send (the send's
//     vector clock must be dominated by the receiver's post-merge clock) —
//     a violation means a buffer crossed PEs without passing through the
//     synchronised mailbox handoff;
//   * per-channel delivery must be FIFO in sequence-number order, so two
//     same-tag messages between one pair can never be swapped;
//   * the merged per-rank event stream (sends + receives ordered by the
//     monotonic event index) must replay the static schedule exactly —
//     same kinds, peers, tags and stage markers — with every payload inside
//     its symbolic worst-case size bound.
#pragma once

#include <string>
#include <vector>

#include "check/schedule.hpp"
#include "check/verify.hpp"
#include "mp/trace.hpp"

namespace slspvr::check {

struct TraceCheckResult {
  std::vector<Diagnostic> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] bool has(Diagnostic::Code code) const;
  [[nodiscard]] std::string summary() const;
};

/// Protocol-level race detection on any completed trace (no schedule
/// needed): send/recv clock dominance, FIFO sequence order per channel, and
/// unreceived-message accounting.
[[nodiscard]] TraceCheckResult check_happens_before(const mp::TrafficTrace& trace);

/// Replay the trace against the static schedule for a width x height frame.
/// The schedule should include the final gather (append_final_gather) when
/// the traced run gathered at a root.
[[nodiscard]] TraceCheckResult check_trace_conformance(const mp::TrafficTrace& trace,
                                                       const CommSchedule& schedule,
                                                       int width, int height);

}  // namespace slspvr::check
