// Static verifier for communication schedules (the "prover" half of
// slspvr-check).
//
// Given a CommSchedule it proves, without running a frame:
//   * send/recv matching — every message sent is received and vice versa,
//     per (source, dest, tag) channel;
//   * deadlock freedom — an eager-send execution of the schedule always
//     terminates; when it cannot, the wait-for graph is extracted and the
//     blocking cycle reported rank by rank;
//   * tag uniqueness — no two messages are ever concurrently in flight on
//     the same (source, dest, tag) channel, so (source, tag) matching is
//     unambiguous even across interacting phases (fold pre-stage vs the
//     inner binary-swap stages vs the final gather);
//   * per-stage partner symmetry for the binary-swap family (pairwise
//     schedules): every stage's sends form a perfect matching of mutually
//     exchanging pairs with equal tags.
//
// verify_eq9 proves the paper's Eq. (9) worst-case message-size ordering
// M_BS >= M_BSBR >= M_BSBRC >= M_BSLC symbolically: each method's maximum
// received payload is a linear form c_full + c_rect*beta + c_nb*gamma in
// the unknown bounding-rect / non-blank fractions (1 >= beta >= gamma >= 0),
// and a linear form is ordered over that triangle iff it is ordered at the
// three vertices — checked with exact rational arithmetic.
#pragma once

#include <string>
#include <vector>

#include "check/schedule.hpp"

namespace slspvr::check {

struct Diagnostic {
  enum class Code {
    kBadEvent,       ///< malformed event: peer out of range, self-message
    kUnmatchedSend,  ///< message sent but never received (leak)
    kUnmatchedRecv,  ///< receive with no matching send (blocks forever)
    kTagCollision,   ///< two messages concurrently in flight on one channel
    kDeadlock,       ///< cyclic wait (the cycle is in `message`)
    kStuck,          ///< no progress, no cycle: blocked on a missing send
    kAsymmetry,      ///< pairwise stage symmetry violated
    kRace,           ///< dynamic: handoff without a happens-before edge
    kInvariant,      ///< model checking: a safety invariant was violated
    kLivelock,       ///< model checking: a cycle with no progressing action
  };
  Code code = Code::kBadEvent;
  int rank = -1;
  int peer = -1;
  int tag = 0;
  int stage = 0;
  std::string message;
};

[[nodiscard]] std::string_view diagnostic_code_name(Diagnostic::Code code);

struct VerifyResult {
  std::vector<Diagnostic> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] bool has(Diagnostic::Code code) const;
  /// Multi-line human-readable report ("ok" when clean).
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] VerifyResult verify_schedule(const CommSchedule& schedule);

struct Eq9Report {
  bool holds = false;
  std::string detail;
};

/// Prove M_BS >= M_BSBR >= M_BSBRC >= M_BSLC on the schedules' symbolic
/// payload bounds (fixed header/code overheads are excluded — they are the
/// paper's known small-P inversion source and reported in `detail`).
[[nodiscard]] Eq9Report verify_eq9(const CommSchedule& bs, const CommSchedule& bsbr,
                                   const CommSchedule& bsbrc, const CommSchedule& bslc);

}  // namespace slspvr::check
