// Static communication-schedule model for slspvr-check.
//
// Every compositing method in this system is a *fixed rendezvous schedule*:
// given the rank count P, the complete per-rank sequence of sends, receives
// and barriers — peers, tags, stage markers and worst-case payload sizes —
// is known without rendering a frame. CommSchedule is that sequence as data,
// emitted by each core::Compositor's schedule(P) method and consumed by the
// verifier (check/verify.hpp) and the dynamic trace checker
// (check/trace_check.hpp).
//
// Payload sizes are symbolic, not numeric: a SizeBound names the screen
// region a message covers (as a fraction of the full A-pixel frame) and the
// *payload class* — whole region, bounding-rectangle clipped, or non-blank
// pixels only. The classes form the dominance chain behind the paper's
// Eq. (9) ordering M_BS >= M_BSBR >= M_BSBRC >= M_BSLC; the verifier proves
// the chain on these bounds with exact rational arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slspvr::check {

/// Exact rational number for symbolic size accounting (area fractions are
/// 1/2^k or 1/P — denominators stay tiny, no overflow care needed).
struct Rational {
  std::int64_t num = 0;
  std::int64_t den = 1;

  [[nodiscard]] static Rational of(std::int64_t n, std::int64_t d);
  friend Rational operator+(Rational a, Rational b);
  friend Rational operator*(Rational a, Rational b);
  friend bool operator==(const Rational&, const Rational&);
  [[nodiscard]] bool operator<(const Rational& other) const;
  [[nodiscard]] bool operator<=(const Rational& other) const;
  [[nodiscard]] std::string str() const;
};

/// The screen region a message covers, as a recipe over the full W x H
/// frame: halve `halvings` times (binary-swap stages), or take one of
/// `bands` horizontal bands (direct-send / pipeline). `scalar` regions are
/// pixel-count progressions (BSLC's interleaved ranges) rather than
/// rectangles, which tightens the rounding of repeated halving.
struct RegionSpec {
  int halvings = 0;
  int bands = 1;
  bool scalar = false;
  /// Mixed-radix split factors for k-ary group exchanges: the region is
  /// sliced into radices[0] parts, each part into radices[1] parts, and so
  /// on (ceil rounding per cut, like the centerline split). Empty means
  /// "use `halvings`" — power-of-two schedules keep the legacy encoding so
  /// Eq. (9) payload forms and existing bounds stay byte-identical.
  std::vector<int> radices;

  /// Nominal area as a fraction of the full frame area A.
  [[nodiscard]] Rational area_fraction() const;
};

/// Worst-case payload classes, totally ordered by pointwise dominance:
/// shipping a whole region always costs at least as much as its bounding
/// rectangle, which costs at least as much as its non-blank pixels.
enum class PayloadClass {
  kNone = 0,          ///< header-only message
  kNonBlank = 1,      ///< RLE / span / record encodings (BSLC, BSBRC, BSBRS)
  kBoundingRect = 2,  ///< bounding-rectangle clipped raw pixels (BSBR)
  kFullRegion = 3,    ///< whole region raw pixels (BS, dense direct-send)
};

[[nodiscard]] std::string_view payload_class_name(PayloadClass c);

/// Symbolic worst-case size of one message: fixed header bytes plus
/// per-pixel wire bytes over the covered region, plus per-row bytes for
/// encodings that pay per rectangle row even when the row is blank (BSBRS's
/// span-count table).
struct SizeBound {
  PayloadClass payload = PayloadClass::kNone;
  RegionSpec region;
  std::int64_t fixed_bytes = 0;      ///< headers independent of region size
  std::int64_t per_pixel_bytes = 0;  ///< worst-case wire bytes per region pixel
  std::int64_t per_row_bytes = 0;    ///< worst-case wire bytes per region row
};

/// Largest pixel count the region can reach on a concrete W x H frame
/// (accounts for the ceil rounding of centerline splits and band edges).
[[nodiscard]] std::int64_t max_region_pixels(const RegionSpec& region, int width, int height);

/// Largest row count the region can reach (0 for scalar progressions;
/// centerline splits may always cut the width, so the unbanded bound is H).
[[nodiscard]] std::int64_t max_region_rows(const RegionSpec& region, int height);

/// Evaluate a bound on a concrete frame: the byte count no conforming
/// message may exceed.
[[nodiscard]] std::uint64_t max_message_bytes(const SizeBound& bound, int width, int height);

enum class EventKind { kSend, kRecv, kBarrier };

/// One step of one rank's communication program.
struct ScheduleEvent {
  EventKind kind = EventKind::kSend;
  int peer = -1;  ///< dest (send) / source (recv); -1 for barrier
  int tag = 0;
  int stage = 0;  ///< compositing stage marker the traffic trace will carry
  SizeBound bound;  ///< sends only: symbolic worst-case payload size
};

/// A method's complete communication pattern for one rank count.
struct CommSchedule {
  std::string method;
  int ranks = 0;
  /// Binary-swap-family methods promise per-stage partner symmetry: at every
  /// stage the sends form a perfect matching of mutually exchanging pairs.
  bool pairwise = false;
  std::vector<std::vector<ScheduleEvent>> per_rank;
  /// Per-rank worst-case payload of the final out-of-phase gather (what the
  /// rank owns when compositing ends). Empty when the emitter doesn't model
  /// the gather. PayloadClass::kNone entries send the gather header only.
  std::vector<SizeBound> final_gather;
};

// ---- canonical schedule builders -----------------------------------------
// The per-method swap/tree/direct-send/pipeline builders that used to live
// here are gone: those schedules are now *derived* from the same
// core::ExchangePlan object the compositing engine executes
// (core::derive_schedule in src/core/plan.hpp), so the static model can
// never drift from the code path that runs. Only the fold wrapper — which
// composes another method's schedule — and the gather appender remain
// hand-written.

/// Fold wrapper: each non-leader ships its BSBRC-encoded subimage to its
/// group leader (tag 800, stage 1); `inner` — the wrapped method's schedule
/// for the Q = 2^floor(log2 P) leaders — is then relabelled onto the leader
/// world ranks. Accepts any P >= 1.
[[nodiscard]] CommSchedule fold_schedule(std::string_view method, int ranks,
                                         const CommSchedule& inner);

/// Append the final gather (core::gather_final): every rank but `root`
/// sends its owned piece under tag 900 at stage 0; root receives them in
/// ascending rank order. Requires `schedule.final_gather` to be populated.
void append_final_gather(CommSchedule& schedule, int root = 0);

/// Reserved tags the schedules use; kept in one place so the verifier can
/// cross-check tag uniqueness between phases (fold pre-stage vs the inner
/// binary-swap stages vs the gather).
inline constexpr int kFoldTag = 800;    // matches core/fold.cpp
inline constexpr int kGatherTag = 900;  // matches core/gather.cpp

}  // namespace slspvr::check
