#include "check/trace_check.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

namespace slspvr::check {

namespace {

using mp::MessageRecord;

/// clock a happened-before-or-equals clock b, componentwise.
bool dominated(const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

std::string event_str(int rank, const MessageRecord& rec, bool is_send) {
  std::ostringstream out;
  out << (is_send ? "send " : "recv ") << "rank " << rank << (is_send ? " -> " : " <- ")
      << rec.peer << " tag " << rec.tag << " seq " << rec.seq << " stage " << rec.stage
      << " (" << rec.bytes << " bytes, event " << rec.index << ")";
  return out.str();
}

/// Merge a rank's sends and receives back into program order by event index.
std::vector<std::pair<const MessageRecord*, bool>> merged_stream(const mp::TrafficTrace& trace,
                                                                 int rank) {
  std::vector<std::pair<const MessageRecord*, bool>> events;  // (record, is_send)
  for (const auto& rec : trace.sent(rank)) {
    if (rec.tag >= 0) events.emplace_back(&rec, true);
  }
  for (const auto& rec : trace.received(rank)) {
    if (rec.tag >= 0) events.emplace_back(&rec, false);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.first->index < b.first->index; });
  return events;
}

}  // namespace

bool TraceCheckResult::has(Diagnostic::Code code) const {
  return std::any_of(errors.begin(), errors.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

std::string TraceCheckResult::summary() const {
  if (errors.empty()) return "ok";
  std::ostringstream out;
  for (const Diagnostic& d : errors) {
    out << "[" << diagnostic_code_name(d.code) << "] " << d.message << "\n";
  }
  return out.str();
}

TraceCheckResult check_happens_before(const mp::TrafficTrace& trace) {
  TraceCheckResult result;
  const int ranks = trace.ranks();

  // Index every send by its (source, dest, tag, seq) identity.
  std::map<std::tuple<int, int, int, std::uint64_t>, const MessageRecord*> sends;
  std::map<std::tuple<int, int, int>, std::int64_t> balance;
  for (int r = 0; r < ranks; ++r) {
    for (const MessageRecord& rec : trace.sent(r)) {
      if (rec.tag < 0) continue;  // runtime-internal barrier traffic
      sends[{r, rec.peer, rec.tag, rec.seq}] = &rec;
      ++balance[{r, rec.peer, rec.tag}];
    }
  }

  for (int r = 0; r < ranks; ++r) {
    std::map<std::pair<int, int>, std::uint64_t> last_seq;  // channel -> last seq + 1
    std::map<std::pair<int, int>, bool> seen;
    for (const MessageRecord& rec : trace.received(r)) {
      if (rec.tag < 0) continue;
      --balance[{rec.peer, r, rec.tag}];
      const auto it = sends.find({rec.peer, r, rec.tag, rec.seq});
      if (it == sends.end()) {
        result.errors.push_back(
            {Diagnostic::Code::kUnmatchedRecv, r, rec.peer, rec.tag, rec.stage,
             event_str(r, rec, false) + ": no send record with this identity exists"});
        continue;
      }
      const MessageRecord& send = *it->second;
      // The mailbox handoff must order the send before the receive: the
      // sender's clock at deposit time is dominated by the receiver's clock
      // after the merge. Anything else means the buffer changed PEs without
      // synchronisation.
      if (!dominated(send.clock, rec.clock)) {
        result.errors.push_back(
            {Diagnostic::Code::kRace, r, rec.peer, rec.tag, rec.stage,
             "unsynchronized cross-PE handoff: " + event_str(r, rec, false) +
                 " does not causally follow its " + event_str(rec.peer, send, true)});
      }
      // FIFO per channel: sequence numbers must arrive in send order.
      const std::pair<int, int> channel{rec.peer, rec.tag};
      if (seen[channel] && rec.seq <= last_seq[channel]) {
        result.errors.push_back(
            {Diagnostic::Code::kTagCollision, r, rec.peer, rec.tag, rec.stage,
             "out-of-order delivery on channel " + std::to_string(rec.peer) + " -> " +
                 std::to_string(r) + " tag " + std::to_string(rec.tag) + ": seq " +
                 std::to_string(rec.seq) + " after seq " + std::to_string(last_seq[channel])});
      }
      last_seq[channel] = rec.seq;
      seen[channel] = true;
    }
  }

  for (const auto& [channel, diff] : balance) {
    if (diff > 0) {
      result.errors.push_back(
          {Diagnostic::Code::kUnmatchedSend, std::get<0>(channel), std::get<1>(channel),
           std::get<2>(channel), 0,
           "channel " + std::to_string(std::get<0>(channel)) + " -> " +
               std::to_string(std::get<1>(channel)) + " tag " +
               std::to_string(std::get<2>(channel)) + ": " + std::to_string(diff) +
               " message(s) sent but never received"});
    }
  }
  return result;
}

TraceCheckResult check_trace_conformance(const mp::TrafficTrace& trace,
                                         const CommSchedule& schedule, int width,
                                         int height) {
  TraceCheckResult result;
  if (trace.ranks() != schedule.ranks) {
    result.errors.push_back({Diagnostic::Code::kBadEvent, -1, -1, 0, 0,
                             "trace has " + std::to_string(trace.ranks()) +
                                 " ranks, schedule expects " +
                                 std::to_string(schedule.ranks)});
    return result;
  }
  for (int r = 0; r < schedule.ranks; ++r) {
    const auto observed = merged_stream(trace, r);
    const auto& expected = schedule.per_rank[static_cast<std::size_t>(r)];
    const std::size_t n = std::min(observed.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto [rec, is_send] = observed[i];
      const ScheduleEvent& want = expected[i];
      const bool want_send = want.kind == EventKind::kSend;
      if (is_send != want_send || rec->peer != want.peer || rec->tag != want.tag ||
          rec->stage != want.stage) {
        result.errors.push_back(
            {Diagnostic::Code::kBadEvent, r, want.peer, want.tag, want.stage,
             "rank " + std::to_string(r) + " event " + std::to_string(i) + ": observed " +
                 event_str(r, *rec, is_send) + " but schedule expects " +
                 (want_send ? "send to " : "recv from ") + std::to_string(want.peer) +
                 " tag " + std::to_string(want.tag) + " stage " + std::to_string(want.stage)});
        continue;
      }
      if (is_send) {
        const std::uint64_t bound = max_message_bytes(want.bound, width, height);
        if (rec->bytes > bound) {
          result.errors.push_back(
              {Diagnostic::Code::kBadEvent, r, want.peer, want.tag, want.stage,
               "rank " + std::to_string(r) + " event " + std::to_string(i) + ": " +
                   event_str(r, *rec, true) + " exceeds the symbolic worst-case bound of " +
                   std::to_string(bound) + " bytes (" +
                   std::string(payload_class_name(want.bound.payload)) + " payload)"});
        }
      }
    }
    if (observed.size() != expected.size()) {
      result.errors.push_back(
          {Diagnostic::Code::kBadEvent, r, -1, 0, 0,
           "rank " + std::to_string(r) + ": observed " + std::to_string(observed.size()) +
               " events, schedule expects " + std::to_string(expected.size())});
    }
  }
  return result;
}

}  // namespace slspvr::check
