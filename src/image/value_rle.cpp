#include "image/value_rle.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace slspvr::img {

std::vector<ValueRun> value_rle_encode(std::span<const Pixel> pixels) {
  std::vector<ValueRun> runs;
  for (const Pixel& p : pixels) {
    if (!runs.empty() && runs.back().value == p &&
        runs.back().count < std::numeric_limits<std::uint32_t>::max()) {
      ++runs.back().count;
    } else {
      runs.push_back(ValueRun{p, 1});
    }
  }
  return runs;
}

void value_rle_decode(std::span<const ValueRun> runs, std::span<Pixel> out) {
  std::size_t pos = 0;
  for (const ValueRun& run : runs) {
    if (pos + run.count > out.size()) {
      throw std::out_of_range("value_rle_decode: runs exceed output length");
    }
    for (std::uint32_t i = 0; i < run.count; ++i) out[pos++] = run.value;
  }
  if (pos != out.size()) {
    throw std::invalid_argument("value_rle_decode: runs shorter than output length");
  }
}

std::int64_t value_rle_length(std::span<const ValueRun> runs) {
  std::int64_t total = 0;
  for (const ValueRun& run : runs) total += run.count;
  return total;
}

namespace {
void append_merged(std::vector<ValueRun>& out, const Pixel& value, std::uint32_t count) {
  if (!out.empty() && out.back().value == value &&
      std::numeric_limits<std::uint32_t>::max() - out.back().count >= count) {
    out.back().count += count;
  } else {
    out.push_back(ValueRun{value, count});
  }
}
}  // namespace

std::vector<ValueRun> value_rle_composite(std::span<const ValueRun> front,
                                          std::span<const ValueRun> back,
                                          std::int64_t* over_ops) {
  if (value_rle_length(front) != value_rle_length(back)) {
    throw std::invalid_argument("value_rle_composite: sequences differ in length");
  }
  std::vector<ValueRun> out;
  std::size_t fi = 0, bi = 0;
  std::uint32_t f_left = front.empty() ? 0 : front[0].count;
  std::uint32_t b_left = back.empty() ? 0 : back[0].count;
  std::int64_t ops = 0;
  while (fi < front.size() && bi < back.size()) {
    const std::uint32_t n = std::min(f_left, b_left);
    // One over op composites the whole aligned stretch: this is the O(1)
    // best case the paper quotes for compositing compressed images.
    append_merged(out, over(front[fi].value, back[bi].value), n);
    ++ops;
    f_left -= n;
    b_left -= n;
    if (f_left == 0 && ++fi < front.size()) f_left = front[fi].count;
    if (b_left == 0 && ++bi < back.size()) b_left = back[bi].count;
  }
  if (over_ops != nullptr) *over_ops += ops;
  return out;
}

}  // namespace slspvr::img
