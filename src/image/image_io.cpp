#include "image/image_io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace slspvr::img {

namespace {
std::ofstream open_binary(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

std::uint8_t clamp255(float v) {
  const float scaled = v * 255.0f;
  if (scaled <= 0.0f) return 0;
  if (scaled >= 255.0f) return 255;
  return static_cast<std::uint8_t>(scaled + 0.5f);
}
}  // namespace

void write_pgm(const Image& image, const std::string& path) {
  auto out = open_binary(path);
  out << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(image.width()));
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) row[static_cast<std::size_t>(x)] = to_gray8(image.at(x, y));
    out.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::string magic;
  int width = 0, height = 0, maxval = 0;
  in >> magic >> width >> height >> maxval;
  if (!in || magic != "P5" || width <= 0 || height <= 0 || maxval != 255) {
    throw std::runtime_error("not an 8-bit binary PGM: " + path);
  }
  in.get();  // single whitespace after the header
  Image image(width, height);
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    in.read(reinterpret_cast<char*>(row.data()), static_cast<std::streamsize>(row.size()));
    if (!in) throw std::runtime_error("truncated PGM: " + path);
    for (int x = 0; x < width; ++x) {
      const float v = static_cast<float>(row[static_cast<std::size_t>(x)]) / 255.0f;
      if (v > 0.0f) image.at(x, y) = Pixel{v, v, v, 1.0f};
    }
  }
  return image;
}

void write_ppm(const Image& image, const std::string& path) {
  auto out = open_binary(path);
  out << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(image.width()) * 3);
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const Pixel& p = image.at(x, y);
      row[static_cast<std::size_t>(3 * x) + 0] = clamp255(p.r);
      row[static_cast<std::size_t>(3 * x) + 1] = clamp255(p.g);
      row[static_cast<std::size_t>(3 * x) + 2] = clamp255(p.b);
    }
    out.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace slspvr::img
