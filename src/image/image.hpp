// 2D pixel image with row-major storage.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "image/pixel.hpp"
#include "image/rect.hpp"

namespace slspvr::img {

/// Row-major image of 16-byte pixels. Every PE holds a full-frame buffer but
/// only the region it owns during a given compositing stage is meaningful.
class Image {
 public:
  Image() = default;
  Image(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(check_dims(width, height))) {}

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::int64_t pixel_count() const noexcept {
    return static_cast<std::int64_t>(width_) * height_;
  }
  [[nodiscard]] Rect bounds() const noexcept { return Rect{0, 0, width_, height_}; }

  [[nodiscard]] Pixel& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(index(x, y))];
  }
  [[nodiscard]] const Pixel& at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(index(x, y))];
  }

  /// Row-major linear index; used by the interleaved (BSLC) distribution.
  [[nodiscard]] std::int64_t index(int x, int y) const noexcept {
    return static_cast<std::int64_t>(y) * width_ + x;
  }
  [[nodiscard]] Pixel& at_index(std::int64_t i) { return pixels_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Pixel& at_index(std::int64_t i) const {
    return pixels_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::span<Pixel> pixels() noexcept { return pixels_; }
  [[nodiscard]] std::span<const Pixel> pixels() const noexcept { return pixels_; }

  void fill(const Pixel& p) { std::fill(pixels_.begin(), pixels_.end(), p); }
  void clear() { fill(Pixel{}); }

  friend bool operator==(const Image&, const Image&) = default;

 private:
  static std::int64_t check_dims(int width, int height) {
    if (width < 0 || height < 0) {
      throw std::invalid_argument("Image: negative dimensions " + std::to_string(width) +
                                  "x" + std::to_string(height));
    }
    return static_cast<std::int64_t>(width) * height;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Pixel> pixels_;
};

/// Scan a region for the tight bounding rectangle of non-blank pixels
/// (Sec. 3.2: O(A) scan in the first compositing stage). Returns kEmptyRect
/// when every pixel in `region` is blank. `scanned` (optional) receives the
/// number of pixels examined, feeding the T_bound term of Eq. (3)/(7).
[[nodiscard]] Rect bounding_rect_of(const Image& image, const Rect& region,
                                    std::int64_t* scanned = nullptr);

/// Count non-blank pixels in a region (test/metric helper).
[[nodiscard]] std::int64_t count_non_blank(const Image& image, const Rect& region);

/// Composite `incoming` over/under `local` pixel-by-pixel inside `region`,
/// storing into `local`. When `incoming_in_front`, result = incoming OVER
/// local, else local OVER incoming. Returns the number of over operations.
std::int64_t composite_region(Image& local, const Image& incoming, const Rect& region,
                              bool incoming_in_front);

}  // namespace slspvr::img
