// Byte-buffer packing/unpacking for building send buffers.
//
// The BSBR/BSLC/BSBRC methods assemble heterogeneous send buffers (bounding
// rectangle info, run-length codes, packed pixels — Sec. 3.4 lines 9-12).
// PackBuffer/UnpackBuffer give a typed, bounds-checked view of that process.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace slspvr::img {

/// Typed error for malformed wire data: truncated buffers, counts that do
/// not fit the payload, rectangles outside the frame. Receivers must treat
/// it as a peer-supplied-garbage event, never as memory corruption — every
/// decoder bounds-checks before touching pixels.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sequential writer of trivially-copyable values into a byte buffer.
class PackBuffer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    append(&value, sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> values) {
    append(values.data(), values.size_bytes());
  }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }
  void clear() noexcept { data_.clear(); }
  /// Release the backing storage entirely (clear() keeps the capacity) —
  /// the arena shrink policy uses this when a frame-size drop makes the
  /// held capacity dead weight.
  void reset() noexcept { data_ = std::vector<std::byte>(); }
  void reserve(std::size_t n) { data_.reserve(n); }

 private:
  void append(const void* src, std::size_t n) {
    const auto old = data_.size();
    data_.resize(old + n);
    std::memcpy(data_.data() + old, src, n);
  }

  std::vector<std::byte> data_;
};

/// Sequential, bounds-checked reader over a received byte buffer.
class UnpackBuffer {
 public:
  explicit UnpackBuffer(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    T value;
    read(&value, sizeof(T));
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> get_vector(std::size_t count) {
    // Bounds-check before allocating: a corrupted count field must fail
    // with DecodeError, not attempt a multi-gigabyte allocation.
    if (count > remaining() / sizeof(T)) {
      throw DecodeError("UnpackBuffer: short read (want " +
                        std::to_string(count * sizeof(T)) + " bytes, have " +
                        std::to_string(remaining()) + ")");
    }
    std::vector<T> values(count);
    read(values.data(), count * sizeof(T));
    return values;
  }

  /// Borrow `n` bytes in place (zero-copy) and advance the cursor. The view
  /// aliases the receive buffer — valid only while the message bytes live.
  /// The streaming decoders use this to blend straight off the wire; callers
  /// casting to a typed pointer must check alignment themselves (wire pixel
  /// payloads can land 2-mod-4 when an odd code count precedes them).
  [[nodiscard]] std::span<const std::byte> get_bytes(std::size_t n) {
    if (n > remaining()) {
      throw DecodeError("UnpackBuffer: short read (want " + std::to_string(n) +
                        ", have " + std::to_string(remaining()) + ")");
    }
    const std::span<const std::byte> view = data_.subspan(cursor_, n);
    cursor_ += n;
    return view;
  }

  /// Everything after the cursor, without consuming (decode prescans).
  [[nodiscard]] std::span<const std::byte> peek_remaining() const noexcept {
    return data_.subspan(cursor_);
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - cursor_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void read(void* dst, std::size_t n) {
    if (n > remaining()) {
      throw DecodeError("UnpackBuffer: short read (want " + std::to_string(n) +
                        ", have " + std::to_string(remaining()) + ")");
    }
    std::memcpy(dst, data_.data() + cursor_, n);
    cursor_ += n;
  }

  std::span<const std::byte> data_;
  std::size_t cursor_ = 0;
};

}  // namespace slspvr::img
