// Interleaved array distribution (Figure 6) for the BSLC method.
//
// Instead of halving a contiguous screen region, BSLC halves an *interleaved*
// set of pixels each stage so every PE keeps/sends an evenly spread sample of
// the image — Molnar's static load-balancing fix for uneven non-blank pixel
// distributions. The owned set is always an arithmetic progression over the
// row-major pixel index: {offset, offset+stride, ...}, `count` elements.
#pragma once

#include <array>
#include <cstdint>

namespace slspvr::img {

struct InterleavedRange {
  std::int64_t offset = 0;
  std::int64_t stride = 1;
  std::int64_t count = 0;

  friend bool operator==(const InterleavedRange&, const InterleavedRange&) = default;

  [[nodiscard]] constexpr bool empty() const noexcept { return count <= 0; }

  /// Linear pixel index of the i-th element of the progression.
  [[nodiscard]] constexpr std::int64_t index(std::int64_t i) const noexcept {
    return offset + i * stride;
  }

  /// Split into even and odd elements: doubling the stride halves the set
  /// while keeping it evenly interleaved across the image (Figure 6).
  [[nodiscard]] constexpr std::array<InterleavedRange, 2> split() const noexcept {
    const InterleavedRange even{offset, stride * 2, (count + 1) / 2};
    const InterleavedRange odd{offset + stride, stride * 2, count / 2};
    return {even, odd};
  }

  /// Full-image progression: all `pixel_count` pixels with stride 1.
  [[nodiscard]] static constexpr InterleavedRange whole(std::int64_t pixel_count) noexcept {
    return InterleavedRange{0, 1, pixel_count};
  }
};

}  // namespace slspvr::img
