#include "image/rle.hpp"

namespace slspvr::img {

bool rle_valid(const Rle& rle) {
  std::int64_t total = 0;
  std::int64_t foreground = 0;
  bool blank = true;
  for (const std::uint16_t code : rle.codes) {
    total += code;
    if (!blank) foreground += code;
    blank = !blank;
  }
  return total == rle.length &&
         foreground == static_cast<std::int64_t>(rle.pixels.size());
}

}  // namespace slspvr::img
