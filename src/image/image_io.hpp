// Minimal PGM/PPM writers for inspecting rendered/composited images
// (Figure 7 of the paper shows the four test sample renders).
#pragma once

#include <string>

#include "image/image.hpp"

namespace slspvr::img {

/// Write an 8-bit binary PGM (gray levels via to_gray8). Throws on IO error.
void write_pgm(const Image& image, const std::string& path);

/// Write an 8-bit binary PPM (r, g, b channels clamped to [0,255]).
void write_ppm(const Image& image, const std::string& path);

/// Read a binary PGM (P5) back into an image: gray value v/255 becomes an
/// opaque pixel (r=g=b=v/255, a=1), 0 stays blank. Intended for round-trip
/// checks and for feeding externally produced mattes into the pipeline.
[[nodiscard]] Image read_pgm(const std::string& path);

}  // namespace slspvr::img
