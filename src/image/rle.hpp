// Background/foreground run-length encoding (Sec. 3.3, Figure 5).
//
// The paper's key observation: value-based RLE (Ahrens–Painter) degenerates
// on volume-rendered images because adjacent non-blank float pixels rarely
// repeat. Encoding the *blank/non-blank* pattern instead needs only a 2-byte
// count per run (the R_code term of Eq. 6/8) plus the raw non-blank pixels.
//
// Codes alternate blank-count, non-blank-count, ..., starting with a blank
// run (possibly zero-length). Runs longer than 65535 are split by inserting
// a zero-length run of the opposite kind, preserving alternation.
#pragma once

#include <cstdint>
#include <vector>

#include "image/pixel.hpp"

namespace slspvr::img {

/// A run-length encoded pixel sequence.
struct Rle {
  std::vector<std::uint16_t> codes;  ///< alternating blank/non-blank counts
  std::vector<Pixel> pixels;         ///< non-blank pixel values, in order
  std::int64_t length = 0;           ///< total pixels represented

  /// Bytes this encoding occupies on the wire: 2 per code + 16 per pixel
  /// (the 2*R_code + 16*A_opaque terms of Eq. 6 and Eq. 8).
  [[nodiscard]] std::int64_t wire_bytes() const noexcept {
    return 2 * static_cast<std::int64_t>(codes.size()) +
           16 * static_cast<std::int64_t>(pixels.size());
  }

  [[nodiscard]] std::int64_t non_blank_count() const noexcept {
    return static_cast<std::int64_t>(pixels.size());
  }
};

inline constexpr std::uint32_t kMaxRun = 65535;

namespace detail {
inline void emit_run(std::vector<std::uint16_t>& codes, std::int64_t count) {
  while (count > kMaxRun) {
    codes.push_back(static_cast<std::uint16_t>(kMaxRun));
    codes.push_back(0);  // zero-length run of the opposite kind
    count -= kMaxRun;
  }
  codes.push_back(static_cast<std::uint16_t>(count));
}
}  // namespace detail

/// Encode `n` pixels obtained via `get(i)` (0 <= i < n). `get` must return a
/// value convertible to `const Pixel&`. The sequence abstraction covers both
/// BSBRC's rectangle scan order and BSLC's interleaved progression.
template <typename GetPixel>
[[nodiscard]] Rle rle_encode_sequence(std::int64_t n, GetPixel&& get) {
  Rle out;
  out.length = n;
  bool current_blank = true;  // encoding starts with a (possibly empty) blank run
  std::int64_t run = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const Pixel& p = get(i);
    const bool blank = is_blank(p);
    if (blank != current_blank) {
      detail::emit_run(out.codes, run);
      current_blank = blank;
      run = 0;
    }
    ++run;
    if (!blank) out.pixels.push_back(p);
  }
  if (n > 0) detail::emit_run(out.codes, run);
  return out;
}

/// Walk the non-blank entries: calls `visit(sequence_index, pixel)` for each.
/// This is how the receiver composites "only the non-blank pixels in a
/// receiving buffer according to the run-length codes" (Sec. 3.3).
template <typename Visit>
void rle_for_each_non_blank(const Rle& rle, Visit&& visit) {
  std::int64_t pos = 0;
  std::size_t pix = 0;
  bool blank = true;
  for (const std::uint16_t code : rle.codes) {
    if (!blank) {
      for (std::uint16_t j = 0; j < code; ++j) visit(pos + j, rle.pixels[pix++]);
    }
    pos += code;
    blank = !blank;
  }
}

/// Walk whole non-blank *runs*: calls `visit(start_index, length, pixels)`
/// once per non-empty foreground run, with `pixels` pointing at `length`
/// consecutive entries of rle.pixels. The batched form of
/// rle_for_each_non_blank — receivers hand each run to the span kernels
/// instead of compositing pixel by pixel.
template <typename VisitRun>
void rle_for_each_non_blank_run(const Rle& rle, VisitRun&& visit) {
  std::int64_t pos = 0;
  std::size_t pix = 0;
  bool blank = true;
  for (const std::uint16_t code : rle.codes) {
    if (!blank && code > 0) {
      visit(pos, static_cast<std::int64_t>(code), rle.pixels.data() + pix);
      pix += code;
    }
    pos += code;
    blank = !blank;
  }
}

/// Structural validation: codes sum to length, pixel count matches
/// foreground codes, alternation invariants hold. Used by tests and by the
/// receive path as a cheap corruption check.
[[nodiscard]] bool rle_valid(const Rle& rle);

}  // namespace slspvr::img
