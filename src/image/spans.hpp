// Scanline-span encoding — an alternative sparse-pixel codec implementing
// the paper's future-work direction "study more efficient encoding schemes".
//
// Where the background/foreground RLE (Fig. 5) writes one 2-byte count per
// run boundary across the whole scan, the span codec describes each row of
// the bounding rectangle independently: a 2-byte span count, then per span
// a 2-byte x-offset and 2-byte length, with the non-blank pixel payload
// appended in order. Entirely blank rows cost 2 bytes; the receiver can
// composite span-by-span with no per-pixel position bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hpp"
#include "image/rect.hpp"

namespace slspvr::img {

/// One horizontal run of non-blank pixels within a row.
struct Span {
  std::uint16_t x = 0;    ///< offset from the rectangle's left edge
  std::uint16_t len = 0;  ///< number of pixels

  friend bool operator==(const Span&, const Span&) = default;
};

/// Span encoding of one rectangle's non-blank pixels.
struct SpanImage {
  Rect rect;                             ///< the encoded rectangle
  std::vector<std::uint16_t> row_counts; ///< spans per row (rect.height() entries)
  std::vector<Span> spans;               ///< all spans, row-major
  std::vector<Pixel> pixels;             ///< non-blank pixels, span order

  /// Wire bytes: 2 per row + 4 per span + 16 per pixel (rect header not
  /// included — methods already ship the 8-byte rectangle).
  [[nodiscard]] std::int64_t wire_bytes() const noexcept {
    return 2 * static_cast<std::int64_t>(row_counts.size()) +
           4 * static_cast<std::int64_t>(spans.size()) +
           16 * static_cast<std::int64_t>(pixels.size());
  }

  [[nodiscard]] std::int64_t non_blank_count() const noexcept {
    return static_cast<std::int64_t>(pixels.size());
  }
};

/// Encode the non-blank pixels of `rect` (must fit uint16 offsets).
/// `scanned` (optional) accrues the pixels iterated, for the T_encode term.
[[nodiscard]] SpanImage span_encode_rect(const Image& image, const Rect& rect,
                                         std::int64_t* scanned = nullptr);

/// Composite a SpanImage into `image`: only the span pixels are touched.
/// Returns the number of over operations.
std::int64_t span_composite(Image& image, const SpanImage& spans, bool incoming_in_front);

/// Structural validation (row counts match span list, spans within rect,
/// pixels match span lengths, spans sorted and non-overlapping per row).
[[nodiscard]] bool span_valid(const SpanImage& spans);

}  // namespace slspvr::img
