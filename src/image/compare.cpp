#include "image/compare.hpp"

#include <cmath>
#include <stdexcept>

namespace slspvr::img {

namespace {
void check_same_size(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("image comparison: size mismatch");
  }
}
}  // namespace

float max_abs_diff(const Image& a, const Image& b) {
  check_same_size(a, b);
  float worst = 0.0f;
  for (std::int64_t i = 0; i < a.pixel_count(); ++i) {
    const Pixel& pa = a.at_index(i);
    const Pixel& pb = b.at_index(i);
    worst = std::max({worst, std::fabs(pa.r - pb.r), std::fabs(pa.g - pb.g),
                      std::fabs(pa.b - pb.b), std::fabs(pa.a - pb.a)});
  }
  return worst;
}

std::int64_t count_diff_pixels(const Image& a, const Image& b, float tolerance) {
  check_same_size(a, b);
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < a.pixel_count(); ++i) {
    if (std::fabs(a.at_index(i).a - b.at_index(i).a) > tolerance) ++count;
  }
  return count;
}

double psnr_gray(const Image& a, const Image& b) {
  check_same_size(a, b);
  double mse = 0.0;
  for (std::int64_t i = 0; i < a.pixel_count(); ++i) {
    const double da = to_gray8(a.at_index(i));
    const double db = to_gray8(b.at_index(i));
    mse += (da - db) * (da - db);
  }
  mse /= static_cast<double>(a.pixel_count());
  if (mse <= 0.0) return 999.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace slspvr::img
