// Value-based run-length encoding (Ahrens & Painter, Sec. 2).
//
// Runs of *identical pixel values* with a count field. The paper argues this
// works well for surface/polygon rendering (integer pixels, large constant
// regions) but degenerates for volume rendering (float pixels, neighbours
// rarely equal) — we implement it both as the related-work binary-tree
// compositor's encoding and as an ablation subject that measures that claim.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "image/pixel.hpp"

namespace slspvr::img {

/// One run: a pixel value repeated `count` times. 20 bytes on the wire.
struct ValueRun {
  Pixel value;
  std::uint32_t count = 0;

  friend bool operator==(const ValueRun&, const ValueRun&) = default;
};
static_assert(sizeof(ValueRun) == 20, "value run = 16-byte pixel + 4-byte count");

/// Encode a pixel sequence into maximal runs of equal values.
[[nodiscard]] std::vector<ValueRun> value_rle_encode(std::span<const Pixel> pixels);

/// Decode runs back into `out`; throws if lengths mismatch.
void value_rle_decode(std::span<const ValueRun> runs, std::span<Pixel> out);

/// Total pixels represented by a run list.
[[nodiscard]] std::int64_t value_rle_length(std::span<const ValueRun> runs);

/// Wire size in bytes.
[[nodiscard]] inline std::int64_t value_rle_wire_bytes(std::span<const ValueRun> runs) {
  return static_cast<std::int64_t>(runs.size()) * 20;
}

/// Composite two run lists directly in the compressed domain (the
/// Ahrens–Painter merge described in Sec. 2): walk both lists, composite
/// min(count) pixels at a time, and re-merge equal adjacent outputs.
/// `front` and `back` must represent equal-length sequences.
/// `over_ops` (optional) accumulates the number of over operations.
[[nodiscard]] std::vector<ValueRun> value_rle_composite(std::span<const ValueRun> front,
                                                        std::span<const ValueRun> back,
                                                        std::int64_t* over_ops = nullptr);

}  // namespace slspvr::img
