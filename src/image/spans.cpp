#include "image/spans.hpp"

#include "image/kernels.hpp"

namespace slspvr::img {

SpanImage span_encode_rect(const Image& image, const Rect& rect, std::int64_t* scanned) {
  SpanImage out;
  out.rect = rect;
  if (rect.empty()) return out;
  out.row_counts.reserve(static_cast<std::size_t>(rect.height()));
  for (int y = rect.y0; y < rect.y1; ++y) {
    std::uint16_t count = 0;
    int x = rect.x0;
    while (x < rect.x1) {
      // Skip blanks.
      while (x < rect.x1 && is_blank(image.at(x, y))) ++x;
      if (x >= rect.x1) break;
      const int start = x;
      while (x < rect.x1 && !is_blank(image.at(x, y))) {
        out.pixels.push_back(image.at(x, y));
        ++x;
      }
      out.spans.push_back(Span{static_cast<std::uint16_t>(start - rect.x0),
                               static_cast<std::uint16_t>(x - start)});
      ++count;
    }
    out.row_counts.push_back(count);
  }
  if (scanned != nullptr) *scanned += rect.area();
  return out;
}

std::int64_t span_composite(Image& image, const SpanImage& spans, bool incoming_in_front) {
  std::int64_t ops = 0;
  std::size_t span_index = 0;
  std::size_t pixel_index = 0;
  for (std::size_t row = 0; row < spans.row_counts.size(); ++row) {
    const int y = spans.rect.y0 + static_cast<int>(row);
    for (std::uint16_t s = 0; s < spans.row_counts[row]; ++s) {
      const Span& span = spans.spans[span_index++];
      kern::composite_span(&image.at(spans.rect.x0 + span.x, y),
                           spans.pixels.data() + pixel_index, span.len, incoming_in_front);
      pixel_index += span.len;
      ops += span.len;
    }
  }
  return ops;
}

bool span_valid(const SpanImage& spans) {
  if (spans.rect.empty()) {
    return spans.row_counts.empty() && spans.spans.empty() && spans.pixels.empty();
  }
  if (static_cast<int>(spans.row_counts.size()) != spans.rect.height()) return false;
  std::size_t total_spans = 0;
  for (const auto c : spans.row_counts) total_spans += c;
  if (total_spans != spans.spans.size()) return false;

  std::size_t span_index = 0;
  std::int64_t total_pixels = 0;
  for (const auto count : spans.row_counts) {
    int cursor = -1;
    for (std::uint16_t s = 0; s < count; ++s) {
      const Span& span = spans.spans[span_index++];
      if (span.len == 0) return false;
      if (static_cast<int>(span.x) <= cursor) return false;  // sorted, gap >= 1
      if (span.x + span.len > spans.rect.width()) return false;
      cursor = span.x + span.len;  // next span must start beyond (a blank gap)
      total_pixels += span.len;
    }
  }
  return total_pixels == static_cast<std::int64_t>(spans.pixels.size());
}

}  // namespace slspvr::img
