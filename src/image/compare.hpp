// Image comparison utilities used by tests, examples and tools.
#pragma once

#include <cstdint>

#include "image/image.hpp"

namespace slspvr::img {

/// Maximum absolute per-channel difference between two same-sized images.
[[nodiscard]] float max_abs_diff(const Image& a, const Image& b);

/// Number of pixels whose opacity differs by more than `tolerance`.
[[nodiscard]] std::int64_t count_diff_pixels(const Image& a, const Image& b,
                                             float tolerance = 1e-4f);

/// Peak signal-to-noise ratio over the gray channel (dB; +inf for equal
/// images, returned as a large finite sentinel 999.0).
[[nodiscard]] double psnr_gray(const Image& a, const Image& b);

}  // namespace slspvr::img
