#include "image/image.hpp"

#include <algorithm>

#include "image/kernels.hpp"

namespace slspvr::img {

Rect bounding_rect_of(const Image& image, const Rect& region, std::int64_t* scanned) {
  const Rect clipped = intersect(region, image.bounds());
  const int w = clipped.width();
  int min_x = clipped.x1, min_y = clipped.y1;
  int max_x = clipped.x0 - 1, max_y = clipped.y0 - 1;
  std::int64_t examined = 0;
  for (int y = clipped.y0; y < clipped.y1; ++y) {
    examined += w;
    const kern::RowExtent extent = kern::row_non_blank_extent(&image.at(clipped.x0, y), w);
    if (extent.first < 0) continue;
    min_x = std::min<int>(min_x, clipped.x0 + static_cast<int>(extent.first));
    max_x = std::max<int>(max_x, clipped.x0 + static_cast<int>(extent.last));
    if (min_y > y) min_y = y;
    max_y = y;
  }
  if (scanned != nullptr) *scanned += examined;
  if (max_x < min_x || max_y < min_y) return kEmptyRect;
  return Rect{min_x, min_y, max_x + 1, max_y + 1};
}

std::int64_t count_non_blank(const Image& image, const Rect& region) {
  const Rect clipped = intersect(region, image.bounds());
  std::int64_t count = 0;
  for (int y = clipped.y0; y < clipped.y1; ++y) {
    count += kern::count_non_blank_span(&image.at(clipped.x0, y), clipped.width());
  }
  return count;
}

std::int64_t composite_region(Image& local, const Image& incoming, const Rect& region,
                              bool incoming_in_front) {
  const Rect clipped = intersect(region, local.bounds());
  const int w = clipped.width();
  for (int y = clipped.y0; y < clipped.y1; ++y) {
    kern::composite_span(&local.at(clipped.x0, y), &incoming.at(clipped.x0, y), w,
                         incoming_in_front);
  }
  return clipped.area();
}

}  // namespace slspvr::img
