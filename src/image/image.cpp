#include "image/image.hpp"

#include <algorithm>

namespace slspvr::img {

Rect bounding_rect_of(const Image& image, const Rect& region, std::int64_t* scanned) {
  const Rect clipped = intersect(region, image.bounds());
  int min_x = clipped.x1, min_y = clipped.y1;
  int max_x = clipped.x0 - 1, max_y = clipped.y0 - 1;
  std::int64_t examined = 0;
  for (int y = clipped.y0; y < clipped.y1; ++y) {
    for (int x = clipped.x0; x < clipped.x1; ++x) {
      ++examined;
      if (!is_blank(image.at(x, y))) {
        min_x = std::min(min_x, x);
        min_y = std::min(min_y, y);
        max_x = std::max(max_x, x);
        max_y = std::max(max_y, y);
      }
    }
  }
  if (scanned != nullptr) *scanned += examined;
  if (max_x < min_x || max_y < min_y) return kEmptyRect;
  return Rect{min_x, min_y, max_x + 1, max_y + 1};
}

std::int64_t count_non_blank(const Image& image, const Rect& region) {
  const Rect clipped = intersect(region, image.bounds());
  std::int64_t count = 0;
  for (int y = clipped.y0; y < clipped.y1; ++y) {
    for (int x = clipped.x0; x < clipped.x1; ++x) {
      if (!is_blank(image.at(x, y))) ++count;
    }
  }
  return count;
}

std::int64_t composite_region(Image& local, const Image& incoming, const Rect& region,
                              bool incoming_in_front) {
  const Rect clipped = intersect(region, local.bounds());
  std::int64_t ops = 0;
  for (int y = clipped.y0; y < clipped.y1; ++y) {
    for (int x = clipped.x0; x < clipped.x1; ++x) {
      const Pixel& in = incoming.at(x, y);
      Pixel& out = local.at(x, y);
      out = incoming_in_front ? over(in, out) : over(out, in);
      ++ops;
    }
  }
  return ops;
}

}  // namespace slspvr::img
