#include "image/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(SLSPVR_KERNELS_X86)
#include <immintrin.h>
#define SLSPVR_TARGET_AVX2 __attribute__((target("avx2")))
#endif

// The scalar implementations are the reference oracle: one pixel at a time,
// exactly the historical loops. Keep the optimizer from auto-vectorizing
// them (GCC happily turns them into SSE), both so the oracle's codegen
// matches its definition and so scalar-vs-vector benchmarks compare against
// a genuinely scalar baseline. Identical arithmetic either way — the loops
// carry no cross-iteration dependence the vectorizer could reassociate.
#if defined(__GNUC__) && !defined(__clang__)
#define SLSPVR_SCALAR_REF __attribute__((optimize("no-tree-vectorize")))
#else
#define SLSPVR_SCALAR_REF
#endif

namespace slspvr::img::kern {

namespace {

/// Tri-state override installed by force_scalar_kernels:
/// -1 = follow the environment, 0 = force vector, 1 = force scalar.
std::atomic<int> g_override{-1};

bool env_wants_scalar() noexcept {
  static const bool scalar = [] {
    const char* v = std::getenv("SLSPVR_SCALAR_KERNELS");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return scalar;
}

bool cpu_has_avx2() noexcept {
#if defined(SLSPVR_KERNELS_X86)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

}  // namespace

std::string_view isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2: return "avx2";
    case Isa::kScalar: break;
  }
  return "scalar";
}

bool simd_compiled() noexcept {
#if defined(SLSPVR_KERNELS_X86)
  return true;
#else
  return false;
#endif
}

Isa active_isa() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  const bool scalar = forced >= 0 ? forced == 1 : env_wants_scalar();
  if (!scalar && simd_compiled() && cpu_has_avx2()) return Isa::kAvx2;
  return Isa::kScalar;
}

bool force_scalar_kernels(bool scalar) noexcept {
  return g_override.exchange(scalar ? 1 : 0, std::memory_order_relaxed) == 1;
}

void clear_kernel_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Scalar reference implementations (the oracle). These are deliberately the
// historical one-pixel-at-a-time loops; the vector paths must match them
// byte for byte.

namespace {

SLSPVR_SCALAR_REF void composite_span_scalar(Pixel* local, const Pixel* incoming, std::int64_t n,
                           bool incoming_in_front) noexcept {
  if (incoming_in_front) {
    for (std::int64_t i = 0; i < n; ++i) local[i] = over(incoming[i], local[i]);
  } else {
    for (std::int64_t i = 0; i < n; ++i) local[i] = over(local[i], incoming[i]);
  }
}

SLSPVR_SCALAR_REF RowExtent row_non_blank_extent_scalar(const Pixel* row, std::int64_t n) noexcept {
  RowExtent extent;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!is_blank(row[i])) {
      extent.first = i;
      break;
    }
  }
  if (extent.first < 0) return extent;
  for (std::int64_t i = n - 1; i >= extent.first; --i) {
    if (!is_blank(row[i])) {
      extent.last = i;
      break;
    }
  }
  return extent;
}

SLSPVR_SCALAR_REF std::int64_t count_non_blank_span_scalar(const Pixel* row, std::int64_t n) noexcept {
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!is_blank(row[i])) ++count;
  }
  return count;
}

SLSPVR_SCALAR_REF void rle_classify_span_scalar(const Pixel* row, std::int64_t n, RunState& state, Rle& out) {
  for (std::int64_t i = 0; i < n; ++i) {
    const bool blank = is_blank(row[i]);
    if (blank != state.blank) {
      detail::emit_run(out.codes, state.run);
      state.blank = blank;
      state.run = 0;
    }
    ++state.run;
    if (!blank) out.pixels.push_back(row[i]);
  }
}

SLSPVR_SCALAR_REF void gather_strided_scalar(const Pixel* base, std::int64_t offset, std::int64_t stride,
                           std::int64_t count, Pixel* out) noexcept {
  for (std::int64_t i = 0; i < count; ++i) out[i] = base[offset + i * stride];
}

SLSPVR_SCALAR_REF void scatter_strided_scalar(const Pixel* src, std::int64_t count, Pixel* base,
                            std::int64_t offset, std::int64_t stride) noexcept {
  for (std::int64_t i = 0; i < count; ++i) base[offset + i * stride] = src[i];
}

}  // namespace

// ---------------------------------------------------------------------------
// AVX2 implementations. Pixels are 16 bytes, so one 256-bit register holds
// two pixels; the alpha lanes sit at positions 3 and 7.

#if defined(SLSPVR_KERNELS_X86)

namespace {

/// result = front + (1 - front.a) * back, per component — the exact
/// multiply-then-add ordering of img::over (no FMA, so the rounding matches
/// the scalar oracle bit for bit).
SLSPVR_TARGET_AVX2 inline __m256 over2(__m256 front, __m256 back) noexcept {
  const __m256 alpha = _mm256_shuffle_ps(front, front, _MM_SHUFFLE(3, 3, 3, 3));
  const __m256 t = _mm256_sub_ps(_mm256_set1_ps(1.0f), alpha);
  return _mm256_add_ps(front, _mm256_mul_ps(t, back));
}

/// Blend loop shared by both front orders; `IncomingInFront` is a template
/// parameter so the per-register select compiles away and the 4-pixel body
/// keeps two independent over chains in flight.
template <bool IncomingInFront>
SLSPVR_TARGET_AVX2 void composite_span_avx2_impl(Pixel* local, const Pixel* incoming,
                                                 std::int64_t n) noexcept {
  auto* out = reinterpret_cast<float*>(local);
  const auto* in = reinterpret_cast<const float*>(incoming);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4, out += 16, in += 16) {
    const __m256 l0 = _mm256_loadu_ps(out);
    const __m256 l1 = _mm256_loadu_ps(out + 8);
    const __m256 v0 = _mm256_loadu_ps(in);
    const __m256 v1 = _mm256_loadu_ps(in + 8);
    if constexpr (IncomingInFront) {
      _mm256_storeu_ps(out, over2(v0, l0));
      _mm256_storeu_ps(out + 8, over2(v1, l1));
    } else {
      _mm256_storeu_ps(out, over2(l0, v0));
      _mm256_storeu_ps(out + 8, over2(l1, v1));
    }
  }
  for (; i + 2 <= n; i += 2, out += 8, in += 8) {
    const __m256 l = _mm256_loadu_ps(out);
    const __m256 v = _mm256_loadu_ps(in);
    _mm256_storeu_ps(out, IncomingInFront ? over2(v, l) : over2(l, v));
  }
  if (i < n) {
    local[i] = IncomingInFront ? over(incoming[i], local[i]) : over(local[i], incoming[i]);
  }
}

SLSPVR_TARGET_AVX2 void composite_span_avx2(Pixel* local, const Pixel* incoming,
                                            std::int64_t n, bool incoming_in_front) noexcept {
  if (incoming_in_front) {
    composite_span_avx2_impl<true>(local, incoming, n);
  } else {
    composite_span_avx2_impl<false>(local, incoming, n);
  }
}

/// Bit i of the result is set iff pixel i of the 8-pixel block is non-blank
/// (alpha != 0.0f, NaN counts as non-blank — exactly `!is_blank`). Shuffles
/// the eight alpha lanes into one register so the whole block costs a single
/// compare + movemask instead of four.
SLSPVR_TARGET_AVX2 inline std::uint32_t non_blank_mask8(const Pixel* p) noexcept {
  const auto* f = reinterpret_cast<const float*>(p);
  const __m256 v0 = _mm256_loadu_ps(f);       // pixels 0,1
  const __m256 v1 = _mm256_loadu_ps(f + 8);   // pixels 2,3
  const __m256 v2 = _mm256_loadu_ps(f + 16);  // pixels 4,5
  const __m256 v3 = _mm256_loadu_ps(f + 24);  // pixels 6,7
  // shuffle_ps works per 128-bit half, so the picks land interleaved:
  const __m256 a01 = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 3, 3, 3));  // a0 a0 a2 a2 | a1 a1 a3 a3
  const __m256 a23 = _mm256_shuffle_ps(v2, v3, _MM_SHUFFLE(3, 3, 3, 3));  // a4 a4 a6 a6 | a5 a5 a7 a7
  const __m256 mixed = _mm256_shuffle_ps(a01, a23, _MM_SHUFFLE(2, 0, 2, 0));  // a0 a2 a4 a6 | a1 a3 a5 a7
  const __m256 alphas =
      _mm256_permutevar8x32_ps(mixed, _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
  const __m256 eq = _mm256_cmp_ps(alphas, _mm256_setzero_ps(), _CMP_EQ_OQ);
  return ~static_cast<std::uint32_t>(_mm256_movemask_ps(eq)) & 0xffu;
}

SLSPVR_TARGET_AVX2 RowExtent row_non_blank_extent_avx2(const Pixel* row,
                                                       std::int64_t n) noexcept {
  RowExtent extent;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint32_t m = non_blank_mask8(row + i);
    if (m != 0) {
      extent.first = i + std::countr_zero(m);
      break;
    }
  }
  if (extent.first < 0) {
    for (; i < n; ++i) {
      if (!is_blank(row[i])) {
        extent.first = i;
        break;
      }
    }
    if (extent.first < 0) return extent;
  }
  std::int64_t j = n;
  while (j - 8 >= extent.first) {
    const std::uint32_t m = non_blank_mask8(row + j - 8);
    if (m != 0) {
      extent.last = j - 8 + std::bit_width(m) - 1;
      return extent;
    }
    j -= 8;
  }
  for (std::int64_t k = j - 1; k >= extent.first; --k) {
    if (!is_blank(row[k])) {
      extent.last = k;
      break;
    }
  }
  return extent;
}

SLSPVR_TARGET_AVX2 std::int64_t count_non_blank_span_avx2(const Pixel* row,
                                                          std::int64_t n) noexcept {
  std::int64_t count = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) count += std::popcount(non_blank_mask8(row + i));
  for (; i < n; ++i) {
    if (!is_blank(row[i])) ++count;
  }
  return count;
}

SLSPVR_TARGET_AVX2 void rle_classify_span_avx2(const Pixel* row, std::int64_t n,
                                               RunState& state, Rle& out) {
  std::int64_t pos = 0;
  while (pos < n) {
    // Build one 64-pixel blank/non-blank word (bit = non-blank).
    const int valid = static_cast<int>(n - pos < 64 ? n - pos : 64);
    std::uint64_t word = 0;
    int b = 0;
    for (; b + 8 <= valid; b += 8) {
      word |= static_cast<std::uint64_t>(non_blank_mask8(row + pos + b)) << b;
    }
    for (; b < valid; ++b) {
      word |= static_cast<std::uint64_t>(!is_blank(row[pos + b])) << b;
    }
    // Extract alternating runs word-at-a-time.
    int used = 0;
    while (used < valid) {
      const std::uint64_t rest = word >> used;
      int len = state.blank ? std::countr_zero(rest) : std::countr_one(rest);
      if (len > valid - used) len = valid - used;
      if (len == 0) {  // kind flips here: close the open run
        detail::emit_run(out.codes, state.run);
        state.blank = !state.blank;
        state.run = 0;
        continue;
      }
      if (!state.blank) {
        out.pixels.insert(out.pixels.end(), row + pos + used, row + pos + used + len);
      }
      state.run += len;
      used += len;
    }
    pos += valid;
  }
}

SLSPVR_TARGET_AVX2 void gather_strided_avx2(const Pixel* base, std::int64_t offset,
                                            std::int64_t stride, std::int64_t count,
                                            Pixel* out) noexcept {
  const auto* src = reinterpret_cast<const __m128i*>(base);
  auto* dst = reinterpret_cast<__m128i*>(out);
  std::int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::int64_t k = offset + i * stride;
    const __m128i p0 = _mm_loadu_si128(src + k);
    const __m128i p1 = _mm_loadu_si128(src + k + stride);
    const __m128i p2 = _mm_loadu_si128(src + k + 2 * stride);
    const __m128i p3 = _mm_loadu_si128(src + k + 3 * stride);
    _mm_storeu_si128(dst + i, p0);
    _mm_storeu_si128(dst + i + 1, p1);
    _mm_storeu_si128(dst + i + 2, p2);
    _mm_storeu_si128(dst + i + 3, p3);
  }
  for (; i < count; ++i) out[i] = base[offset + i * stride];
}

SLSPVR_TARGET_AVX2 void scatter_strided_avx2(const Pixel* src, std::int64_t count,
                                             Pixel* base, std::int64_t offset,
                                             std::int64_t stride) noexcept {
  const auto* in = reinterpret_cast<const __m128i*>(src);
  auto* dst = reinterpret_cast<__m128i*>(base);
  std::int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::int64_t k = offset + i * stride;
    const __m128i p0 = _mm_loadu_si128(in + i);
    const __m128i p1 = _mm_loadu_si128(in + i + 1);
    const __m128i p2 = _mm_loadu_si128(in + i + 2);
    const __m128i p3 = _mm_loadu_si128(in + i + 3);
    _mm_storeu_si128(dst + k, p0);
    _mm_storeu_si128(dst + k + stride, p1);
    _mm_storeu_si128(dst + k + 2 * stride, p2);
    _mm_storeu_si128(dst + k + 3 * stride, p3);
  }
  for (; i < count; ++i) base[offset + i * stride] = src[i];
}

}  // namespace

#endif  // SLSPVR_KERNELS_X86

// ---------------------------------------------------------------------------
// Dispatch. One relaxed atomic load per call; the vector paths only exist
// when the configure-time gate compiled them in.

void composite_span(Pixel* local, const Pixel* incoming, std::int64_t n,
                    bool incoming_in_front) noexcept {
#if defined(SLSPVR_KERNELS_X86)
  if (active_isa() == Isa::kAvx2) {
    composite_span_avx2(local, incoming, n, incoming_in_front);
    return;
  }
#endif
  composite_span_scalar(local, incoming, n, incoming_in_front);
}

RowExtent row_non_blank_extent(const Pixel* row, std::int64_t n) noexcept {
#if defined(SLSPVR_KERNELS_X86)
  if (active_isa() == Isa::kAvx2) return row_non_blank_extent_avx2(row, n);
#endif
  return row_non_blank_extent_scalar(row, n);
}

std::int64_t count_non_blank_span(const Pixel* row, std::int64_t n) noexcept {
#if defined(SLSPVR_KERNELS_X86)
  if (active_isa() == Isa::kAvx2) return count_non_blank_span_avx2(row, n);
#endif
  return count_non_blank_span_scalar(row, n);
}

void rle_classify_span(const Pixel* row, std::int64_t n, RunState& state, Rle& out) {
#if defined(SLSPVR_KERNELS_X86)
  if (active_isa() == Isa::kAvx2) {
    rle_classify_span_avx2(row, n, state, out);
    return;
  }
#endif
  rle_classify_span_scalar(row, n, state, out);
}

void rle_classify_flush(RunState& state, Rle& out) { detail::emit_run(out.codes, state.run); }

void gather_strided(const Pixel* base, std::int64_t offset, std::int64_t stride,
                    std::int64_t count, Pixel* out) noexcept {
  if (stride == 1) {
    std::memcpy(out, base + offset, static_cast<std::size_t>(count) * sizeof(Pixel));
    return;
  }
#if defined(SLSPVR_KERNELS_X86)
  if (active_isa() == Isa::kAvx2) {
    gather_strided_avx2(base, offset, stride, count, out);
    return;
  }
#endif
  gather_strided_scalar(base, offset, stride, count, out);
}

void scatter_strided(const Pixel* src, std::int64_t count, Pixel* base, std::int64_t offset,
                     std::int64_t stride) noexcept {
  if (stride == 1) {
    std::memcpy(base + offset, src, static_cast<std::size_t>(count) * sizeof(Pixel));
    return;
  }
#if defined(SLSPVR_KERNELS_X86)
  if (active_isa() == Isa::kAvx2) {
    scatter_strided_avx2(src, count, base, offset, stride);
    return;
  }
#endif
  scatter_strided_scalar(src, count, base, offset, stride);
}

void fill_zero(Pixel* dst, std::int64_t n) noexcept {
  // Blank pixels are all-zero bit patterns, so the arena fill is one memset
  // on every ISA (the compiler vectorizes it; there is nothing to gain from
  // hand-written stores).
  std::memset(static_cast<void*>(dst), 0, static_cast<std::size_t>(n) * sizeof(Pixel));
}

// ---------------------------------------------------------------------------
// Fused wire→frame kernels. The run/span walk is control logic shared by
// both ISAs; every pixel touch goes through the dispatched composite_span,
// so the scalar-oracle contract is inherited rather than duplicated.

void rle_skip(const std::uint16_t* codes, std::size_t ncodes, RleCursor& cur,
              std::int64_t n) noexcept {
  while (n > 0) {
    if (cur.run_left == 0) {
      if (cur.code >= ncodes) return;  // caller validated totals; stop short
      cur.run_left = codes[cur.code++];
      cur.blank = !cur.blank;  // alternation starts blank (kMaxRun escapes
      continue;                // are zero-length runs and just flip twice)
    }
    const std::int64_t take = n < cur.run_left ? n : cur.run_left;
    if (!cur.blank) cur.pixel += take;
    n -= take;
    cur.run_left -= take;
  }
}

std::int64_t composite_rle_span(Pixel* base, std::int64_t pos, std::int64_t width,
                                std::int64_t row_stride, const std::uint16_t* codes,
                                std::size_t ncodes, const Pixel* pixels, RleCursor& cur,
                                std::int64_t n, bool incoming_in_front) {
  std::int64_t composited = 0;
  while (n > 0) {
    if (cur.run_left == 0) {
      if (cur.code >= ncodes) break;
      cur.run_left = codes[cur.code++];
      cur.blank = !cur.blank;
      continue;
    }
    const std::int64_t take = n < cur.run_left ? n : cur.run_left;
    if (!cur.blank) {
      // Whole runs at a time, split only where the run crosses a grid row.
      const Pixel* src = pixels + cur.pixel;
      std::int64_t left = take;
      std::int64_t p = pos;
      while (left > 0) {
        const std::int64_t x = p % width;
        const std::int64_t chunk = left < width - x ? left : width - x;
        composite_span(base + (p / width) * row_stride + x, src, chunk, incoming_in_front);
        p += chunk;
        src += chunk;
        left -= chunk;
      }
      cur.pixel += take;
      composited += take;
    }
    pos += take;
    n -= take;
    cur.run_left -= take;
  }
  return composited;
}

std::int64_t composite_span_rows(Pixel* top_left, std::int64_t row_stride,
                                 const std::uint16_t* row_counts, std::int64_t rows,
                                 const Span* spans, const Pixel* pixels,
                                 bool incoming_in_front) {
  std::int64_t composited = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    Pixel* row = top_left + r * row_stride;
    for (std::uint16_t s = 0; s < row_counts[r]; ++s) {
      const Span& span = *spans++;
      composite_span(row + span.x, pixels, span.len, incoming_in_front);
      pixels += span.len;
      composited += span.len;
    }
  }
  return composited;
}

// ---------------------------------------------------------------------------
// Non-temporal copy.

#if defined(SLSPVR_KERNELS_X86)

namespace {

SLSPVR_TARGET_AVX2 void copy_span_nt_avx2(Pixel* dst, const Pixel* src,
                                          std::int64_t n) noexcept {
  auto* out = reinterpret_cast<float*>(dst);
  const auto* in = reinterpret_cast<const float*>(src);
  std::int64_t i = 0;
  // Scalar head until the destination is 32-byte aligned (streaming stores
  // require it); Pixel is 16 bytes, so at most one head pixel.
  while (i < n && (reinterpret_cast<std::uintptr_t>(out) & 31u) != 0) {
    dst[i] = src[i];
    ++i;
    out += 4;
    in += 4;
  }
  for (; i + 2 <= n; i += 2, out += 8, in += 8) {
    _mm256_stream_ps(out, _mm256_loadu_ps(in));
  }
  if (i < n) dst[i] = src[i];
  _mm_sfence();  // streaming stores are weakly ordered; publish before return
}

}  // namespace

#endif  // SLSPVR_KERNELS_X86

void copy_span_nt(Pixel* dst, const Pixel* src, std::int64_t n) noexcept {
#if defined(SLSPVR_KERNELS_X86)
  if (active_isa() == Isa::kAvx2) {
    copy_span_nt_avx2(dst, src, n);
    return;
  }
#endif
  std::memcpy(static_cast<void*>(dst), static_cast<const void*>(src),
              static_cast<std::size_t>(n) * sizeof(Pixel));
}

}  // namespace slspvr::img::kern
