// Pixel type and the "over" compositing operator.
//
// The paper represents each pixel by 16 bytes of intensity + opacity; we use
// four floats (premultiplied r, g, b and opacity a), which is exactly 16
// bytes and subsumes the 8-bit gray-level images of the evaluation
// (r == g == b). A pixel is *blank* when its opacity is zero — that is the
// background/foreground predicate the BSLC/BSBRC run-length encoder keys on.
#pragma once

#include <cmath>
#include <cstdint>

namespace slspvr::img {

/// 16-byte pixel: premultiplied colour + opacity.
struct Pixel {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
  float a = 0.0f;

  friend bool operator==(const Pixel&, const Pixel&) = default;
};

static_assert(sizeof(Pixel) == 16, "paper assumes 16-byte pixels (Eq. 2)");

/// Background/foreground predicate (Sec. 3.3): blank iff fully transparent.
[[nodiscard]] constexpr bool is_blank(const Pixel& p) noexcept { return p.a == 0.0f; }

/// Porter–Duff "over" for premultiplied pixels: `front` over `back`.
/// This is the compositing operator of sort-last volume rendering; it is
/// associative (which binary-swap exploits) but not commutative (which is
/// why depth order must be respected).
[[nodiscard]] constexpr Pixel over(const Pixel& front, const Pixel& back) noexcept {
  const float t = 1.0f - front.a;
  return Pixel{front.r + t * back.r, front.g + t * back.g, front.b + t * back.b,
               front.a + t * back.a};
}

/// Convert to an 8-bit gray level (the paper renders 8-bit gray images).
/// The stored colour is premultiplied, so quantizing its luma directly would
/// darken every partially transparent pixel (a mid-gray at a=0.5 stores
/// r=g=b=0.25 and would land at 64 instead of 128). Un-premultiply first;
/// blank pixels map to 0.
[[nodiscard]] inline std::uint8_t to_gray8(const Pixel& p) noexcept {
  if (is_blank(p)) return 0;
  const float luma = (0.299f * p.r + 0.587f * p.g + 0.114f * p.b) / p.a;
  const float clamped = luma < 0.0f ? 0.0f : (luma > 1.0f ? 1.0f : luma);
  return static_cast<std::uint8_t>(std::lround(clamped * 255.0f));
}

}  // namespace slspvr::img
