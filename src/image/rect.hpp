// Axis-aligned integer rectangles on the image plane.
//
// Bounding rectangles are the core data structure of the BSBR/BSBRC methods
// (Sec. 3.2): four short integers describing the upper-left and lower-right
// corners. We use half-open coordinates [x0, x1) x [y0, y1) internally and
// serialise to the paper's 8-byte wire format (4 x int16).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace slspvr::img {

struct Rect {
  // Half-open extents; an empty rectangle has x0 >= x1 or y0 >= y1.
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;

  friend bool operator==(const Rect&, const Rect&) = default;

  [[nodiscard]] constexpr bool empty() const noexcept { return x0 >= x1 || y0 >= y1; }
  [[nodiscard]] constexpr int width() const noexcept { return empty() ? 0 : x1 - x0; }
  [[nodiscard]] constexpr int height() const noexcept { return empty() ? 0 : y1 - y0; }
  [[nodiscard]] constexpr std::int64_t area() const noexcept {
    return static_cast<std::int64_t>(width()) * height();
  }
  [[nodiscard]] constexpr bool contains(int x, int y) const noexcept {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  [[nodiscard]] constexpr bool contains(const Rect& other) const noexcept {
    return other.empty() ||
           (other.x0 >= x0 && other.x1 <= x1 && other.y0 >= y0 && other.y1 <= y1);
  }
};

/// Canonical empty rectangle (all zeros).
inline constexpr Rect kEmptyRect{};

/// Intersection; returns an empty rect when disjoint.
[[nodiscard]] constexpr Rect intersect(const Rect& a, const Rect& b) noexcept {
  if (a.empty() || b.empty()) return kEmptyRect;
  const Rect r{std::max(a.x0, b.x0), std::max(a.y0, b.y0), std::min(a.x1, b.x1),
               std::min(a.y1, b.y1)};
  return r.empty() ? kEmptyRect : r;
}

/// Smallest rectangle covering both (the "combine" of BSBRC line 21).
[[nodiscard]] constexpr Rect bounding_union(const Rect& a, const Rect& b) noexcept {
  if (a.empty()) return b.empty() ? kEmptyRect : b;
  if (b.empty()) return a;
  return Rect{std::min(a.x0, b.x0), std::min(a.y0, b.y0), std::max(a.x1, b.x1),
              std::max(a.y1, b.y1)};
}

/// Split along the longer side at the centerline (Sec. 3.4, algorithm line
/// 6). Returns {low half, high half}; for odd sizes the low half gets the
/// extra row/column.
[[nodiscard]] constexpr std::array<Rect, 2> split_centerline(const Rect& r) noexcept {
  if (r.width() >= r.height()) {
    const int mid = r.x0 + (r.width() + 1) / 2;
    return {Rect{r.x0, r.y0, mid, r.y1}, Rect{mid, r.y0, r.x1, r.y1}};
  }
  const int mid = r.y0 + (r.height() + 1) / 2;
  return {Rect{r.x0, r.y0, r.x1, mid}, Rect{r.x0, mid, r.x1, r.y1}};
}

/// Paper wire format: 4 short integers, 8 bytes (Eq. 4 / Eq. 8).
struct WireRect {
  std::int16_t x0 = 0;
  std::int16_t y0 = 0;
  std::int16_t x1 = 0;
  std::int16_t y1 = 0;
};
static_assert(sizeof(WireRect) == 8, "bounding rectangle costs 8 bytes on the wire");

[[nodiscard]] inline WireRect to_wire(const Rect& r) {
  constexpr int kMax = 32767;
  if (r.x0 < -32768 || r.y0 < -32768 || r.x1 > kMax || r.y1 > kMax) {
    throw std::out_of_range("Rect does not fit the 4x int16 wire format: [" +
                            std::to_string(r.x0) + "," + std::to_string(r.y0) + "," +
                            std::to_string(r.x1) + "," + std::to_string(r.y1) + "]");
  }
  return WireRect{static_cast<std::int16_t>(r.x0), static_cast<std::int16_t>(r.y0),
                  static_cast<std::int16_t>(r.x1), static_cast<std::int16_t>(r.y1)};
}

[[nodiscard]] constexpr Rect from_wire(const WireRect& w) noexcept {
  return Rect{w.x0, w.y0, w.x1, w.y1};
}

}  // namespace slspvr::img
