// Batched hot-path kernels for the per-pixel work of every compositing
// method: over-blending a span, the blank/non-blank opacity scan behind
// bounding rectangles, blank/non-blank run classification for the RLE
// encoder, and strided gather/scatter for the BSLC interleaved progression.
//
// Once BSBR/BSLC/BSBRC have minimized compositing *traffic*, these local
// loops dominate a frame (the Distributed FrameBuffer observation). Each
// kernel therefore has two implementations selected at run time:
//
//  * a portable scalar reference — the oracle, semantically identical to the
//    historical one-pixel-at-a-time loops;
//  * an AVX2 implementation (x86-64, compiled only when <immintrin.h> is
//    available — the SLSPVR_KERNELS_X86 configure-time gate set by
//    src/image/CMakeLists.txt) that processes pixels in SIMD lanes and
//    scans opacity word-at-a-time through bitmasks.
//
// The two paths are *byte-identical* by construction: the vector over-blend
// uses the same multiply-then-add ordering as img::over (no FMA
// contraction), the opacity masks evaluate exactly `a == 0.0f`, and the run
// classifier emits the same codes as img::rle_encode_sequence. CI asserts
// whole-frame byte equality for every paper method under both settings.
//
// Dispatch policy (see docs/performance.md):
//  1. SLSPVR_SCALAR_KERNELS=1 in the environment forces the scalar oracle;
//  2. force_scalar_kernels() overrides the environment (tests, benches);
//  3. otherwise the best ISA compiled in AND supported by the CPU runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "image/pixel.hpp"
#include "image/rle.hpp"
#include "image/spans.hpp"

namespace slspvr::img::kern {

/// Instruction sets a kernel call may resolve to.
enum class Isa { kScalar, kAvx2 };

[[nodiscard]] std::string_view isa_name(Isa isa) noexcept;

/// True when the AVX2 implementations were compiled in (configure-time).
[[nodiscard]] bool simd_compiled() noexcept;

/// The implementation the next kernel call will take, after the environment
/// (SLSPVR_SCALAR_KERNELS=1), any force_scalar_kernels() override, and the
/// CPU's capabilities are consulted.
[[nodiscard]] Isa active_isa() noexcept;

/// Test/bench hook: `true` pins every kernel to the scalar oracle, `false`
/// pins them to the best available ISA regardless of the environment.
/// Returns the previous override state. Call clear_kernel_override() to
/// fall back to the environment-driven default.
bool force_scalar_kernels(bool scalar) noexcept;
void clear_kernel_override() noexcept;

// ---------------------------------------------------------------------------
// 1. composite_rows: over-blend `n` contiguous pixels.
//    local[i] = incoming[i] OVER local[i]   when incoming_in_front,
//    local[i] = local[i] OVER incoming[i]   otherwise.
// `local` and `incoming` must not overlap.
void composite_span(Pixel* local, const Pixel* incoming, std::int64_t n,
                    bool incoming_in_front) noexcept;

// ---------------------------------------------------------------------------
// 2. Blank scan (word-at-a-time opacity test) for bounding rectangles.

/// Index extent of the non-blank pixels of a row; {-1, -1} when all blank.
struct RowExtent {
  std::int64_t first = -1;
  std::int64_t last = -1;
};

[[nodiscard]] RowExtent row_non_blank_extent(const Pixel* row, std::int64_t n) noexcept;

/// Number of non-blank pixels among `n` contiguous pixels.
[[nodiscard]] std::int64_t count_non_blank_span(const Pixel* row, std::int64_t n) noexcept;

// ---------------------------------------------------------------------------
// 3. RLE run classification feeding img::Rle (BSBRC / BSLC encoders).

/// Carry-over between consecutive spans of the same scan: runs straddle row
/// boundaries in a rectangle scan, so the classifier is resumable.
struct RunState {
  bool blank = true;      ///< kind of the run currently open
  std::int64_t run = 0;   ///< its length so far
};

/// Classify `n` contiguous pixels, continuing `state`: appends completed
/// run codes (via the same escape logic as img::detail::emit_run) and the
/// non-blank pixel payload to `out`. Does NOT emit the final open run —
/// call rle_classify_flush once after the last span of the scan.
void rle_classify_span(const Pixel* row, std::int64_t n, RunState& state, Rle& out);

/// Emit the run left open by the last rle_classify_span call. Matches the
/// trailing emit of img::rle_encode_sequence (call only when the scan
/// covered at least one pixel).
void rle_classify_flush(RunState& state, Rle& out);

// ---------------------------------------------------------------------------
// 4. Strided gather/scatter for the BSLC interleaved pack path.

/// out[i] = base[offset + i*stride] for i in [0, count).
void gather_strided(const Pixel* base, std::int64_t offset, std::int64_t stride,
                    std::int64_t count, Pixel* out) noexcept;

/// base[offset + i*stride] = src[i] for i in [0, count).
void scatter_strided(const Pixel* src, std::int64_t count, Pixel* base,
                     std::int64_t offset, std::int64_t stride) noexcept;

// ---------------------------------------------------------------------------
// 5. Scratch-arena fill: dst[0..n) = fully transparent blank pixels.
void fill_zero(Pixel* dst, std::int64_t n) noexcept;

// ---------------------------------------------------------------------------
// 6. Fused wire→frame kernels: blend straight out of an RLE / span payload
//    still sitting in the receive buffer, instead of materializing the
//    unpacked intermediate (img::Rle / img::SpanImage) first. The per-pixel
//    arithmetic delegates to the dispatched composite_span above, so the
//    SLSPVR_SCALAR_KERNELS / force_scalar_kernels contract and the byte-
//    identity guarantee carry over unchanged — fused vs unpack+blend differ
//    only in memory traffic, never in results.

/// Resumable position inside a wire RLE code/payload sequence, so row bands
/// of one message can be blended by different workers: band j's cursor is
/// derived by rle_skip-ing to the band's first sequence element (runs —
/// including kMaxRun escape chains — straddle band boundaries freely).
/// Start every walk from a default-constructed cursor.
struct RleCursor {
  std::size_t code = 0;       ///< next code index
  std::int64_t run_left = 0;  ///< remainder of the currently open run
  bool blank = false;         ///< kind of the open run (pre-first-code state)
  std::int64_t pixel = 0;     ///< payload pixels consumed so far
};

/// Advance `cur` by `n` sequence elements without blending (band prescan).
void rle_skip(const std::uint16_t* codes, std::size_t ncodes, RleCursor& cur,
              std::int64_t n) noexcept;

/// Blend `n` sequence elements starting at `cur`, laid over a row-major
/// grid: sequence element p (global position, pass the band's start) lands
/// at base[(p / width) * row_stride + p % width]. width == row_stride
/// degenerates to one contiguous span (the BSLC SoA case). Only non-blank
/// run pixels are composited; returns how many were.
std::int64_t composite_rle_span(Pixel* base, std::int64_t pos, std::int64_t width,
                                std::int64_t row_stride, const std::uint16_t* codes,
                                std::size_t ncodes, const Pixel* pixels, RleCursor& cur,
                                std::int64_t n, bool incoming_in_front);

/// Blend `rows` scanline-span rows straight from wire arrays: row r has
/// row_counts[r] spans; spans/pixels must be pre-offset to the first span /
/// payload pixel of row 0 (band prescan does the prefix sums). Row r starts
/// at top_left + r * row_stride. Returns the number of pixels composited.
std::int64_t composite_span_rows(Pixel* top_left, std::int64_t row_stride,
                                 const std::uint16_t* row_counts, std::int64_t rows,
                                 const Span* spans, const Pixel* pixels,
                                 bool incoming_in_front);

// ---------------------------------------------------------------------------
// 7. Non-temporal copy for the final gather: the root writes every placed
//    row exactly once and never re-reads it this frame, so streaming stores
//    skip the read-for-ownership and leave the cache to the pixels that are
//    still live. Scalar oracle: memcpy (copies are copies — byte-identity
//    is trivial); AVX2: 32-byte streaming stores with scalar head/tail.
void copy_span_nt(Pixel* dst, const Pixel* src, std::int64_t n) noexcept;

}  // namespace slspvr::img::kern
