// Quickstart: the whole sort-last-sparse pipeline in ~40 lines of API.
//
//   1. generate (or load) a volume dataset
//   2. partition it across P processors (kd tree)
//   3. render each brick to a subimage (ray casting)
//   4. composite with BSBRC — the paper's best method
//   5. write the final image and print what it cost
//
// Everything below also works with BS/BSBR/BSLC, with the splatting
// renderer, and with non-power-of-two P (see the other examples).
#include <filesystem>
#include <iostream>

#include "core/bsbrc.hpp"
#include "pvr/experiment.hpp"
#include "pvr/report.hpp"
#include "image/image_io.hpp"

namespace pvr = slspvr::pvr;
namespace vol = slspvr::vol;

int main() {
  // Configure: the paper's Head dataset, 8 PEs, 384x384 image, slightly
  // rotated view. volume_scale 0.5 keeps the demo fast; use 1.0 for the
  // full 256x256x113 grid.
  pvr::ExperimentConfig config;
  config.dataset = vol::DatasetKind::Head;
  config.volume_scale = 0.5;
  config.image_size = 384;
  config.ranks = 8;
  config.rot_x_deg = 18.0f;
  config.rot_y_deg = 24.0f;

  // Partition + render happen here (steps 1-3).
  std::cout << "partitioning and rendering " << config.ranks << " subvolumes...\n";
  const pvr::Experiment experiment(config);

  // Composite with BSBRC (step 4).
  const slspvr::core::BsbrcCompositor bsbrc;
  const pvr::MethodResult result = experiment.run(bsbrc);

  // Save the final image (step 5).
  std::filesystem::create_directories("out");
  slspvr::img::write_pgm(result.final_image, "out/quickstart_head.pgm");

  std::cout << "method           : " << result.method << "\n"
            << "image            : out/quickstart_head.pgm\n"
            << "modelled T_comp  : " << pvr::fmt_ms(result.times.comp_ms) << " ms (SP2 model)\n"
            << "modelled T_comm  : " << pvr::fmt_ms(result.times.comm_ms) << " ms\n"
            << "modelled T_total : " << pvr::fmt_ms(result.times.total_ms()) << " ms\n"
            << "M_max            : " << pvr::fmt_bytes(result.m_max) << " bytes\n"
            << "wall clock (SPMD): " << pvr::fmt_ms(result.wall_ms) << " ms in-process\n";

  // Sanity: the parallel result must equal the sequential reference.
  const auto reference = experiment.reference();
  std::int64_t mismatches = 0;
  for (std::int64_t i = 0; i < reference.pixel_count(); ++i) {
    const auto& a = result.final_image.at_index(i);
    const auto& b = reference.at_index(i);
    if (std::abs(a.a - b.a) > 1e-4f) ++mismatches;
  }
  std::cout << "pixels differing from sequential reference: " << mismatches << "\n";
  return mismatches == 0 ? 0 : 1;
}
