// Rotation-animation timing: the interactive-exploration scenario from the
// paper's introduction ("it is important for users to interactively explore
// the volume data in real time").
//
// Rotates the viewpoint through a sweep, re-runs the rendering + compositing
// phases per frame, and prints the per-frame modelled compositing time of
// BSBR vs BSBRC — showing how viewpoint-dependent bounding rectangles and
// pixel sparsity move the numbers frame to frame, and writing a couple of
// frames to out/ for inspection.
#include <filesystem>
#include <iostream>

#include "core/bsbr.hpp"
#include "core/bsbrc.hpp"
#include "image/image_io.hpp"
#include "pvr/experiment.hpp"
#include "pvr/report.hpp"

namespace pvr = slspvr::pvr;
namespace vol = slspvr::vol;
namespace core = slspvr::core;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  const int frames = argc > 2 ? std::atoi(argv[2]) : 10;
  std::filesystem::create_directories("out");

  std::cout << "Animation sweep — engine_high, P=16, " << frames
            << " frames rotating 0..90 degrees about y\n\n";

  const core::BsbrCompositor bsbr;
  const core::BsbrcCompositor bsbrc;
  pvr::TextTable table({"frame", "rot_y", "render wall(ms)", "BSBR T_total",
                        "BSBRC T_total", "BSBRC M_max"});

  double bsbr_sum = 0, bsbrc_sum = 0;
  for (int frame = 0; frame < frames; ++frame) {
    const float rot_y = 90.0f * static_cast<float>(frame) / static_cast<float>(frames - 1);

    pvr::ExperimentConfig config;
    config.dataset = vol::DatasetKind::EngineHigh;
    config.volume_scale = scale;
    config.image_size = 256;
    config.ranks = 16;
    config.rot_x_deg = 12.0f;
    config.rot_y_deg = rot_y;

    const auto t0 = std::chrono::steady_clock::now();
    const pvr::Experiment experiment(config);
    const auto t1 = std::chrono::steady_clock::now();
    const double render_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    const auto r_bsbr = experiment.run(bsbr);
    const auto r_bsbrc = experiment.run(bsbrc);
    bsbr_sum += r_bsbr.times.total_ms();
    bsbrc_sum += r_bsbrc.times.total_ms();

    table.add_row({std::to_string(frame), pvr::fmt_ms(rot_y, 0), pvr::fmt_ms(render_ms, 0),
                   pvr::fmt_ms(r_bsbr.times.total_ms()),
                   pvr::fmt_ms(r_bsbrc.times.total_ms()), pvr::fmt_bytes(r_bsbrc.m_max)});

    if (frame == 0 || frame == frames - 1) {
      slspvr::img::write_pgm(r_bsbrc.final_image,
                             "out/anim_frame" + std::to_string(frame) + ".pgm");
    }
  }
  table.print(std::cout);
  std::cout << "\nmean over sweep: BSBR " << pvr::fmt_ms(bsbr_sum / frames) << " ms, BSBRC "
            << pvr::fmt_ms(bsbrc_sum / frames)
            << " ms (first/last frames written to out/anim_frame*.pgm)\n";
  return 0;
}
