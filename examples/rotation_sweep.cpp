// Viewpoint-rotation sweep: reproduces the Sec. 3.2 discussion of empty
// bounding rectangles.
//
// "The number of empty bounding rectangles depends on the number of
//  processors and the rotation of a viewing point. ... there are
//  log(cbrt(P)) nonempty bounding rectangles ... when we use a normal
//  orthogonal projection. As a viewing point rotates along one axis, each
//  processor has a maximum of log(cbrt(P^2)) nonempty ... while a viewing
//  point rotates along two axes [a maximum of] log P."
//
// For each rotation mode this example counts, per PE, how many of the
// log P receiving bounding rectangles are nonempty under BSBR (a stage
// message larger than the 8-byte header), and reports max/mean across PEs
// next to the paper's bound.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/bsbr.hpp"
#include "mp/runtime.hpp"
#include "pvr/experiment.hpp"
#include "pvr/report.hpp"

namespace pvr = slspvr::pvr;
namespace vol = slspvr::vol;
namespace core = slspvr::core;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
  const int ranks = 64;  // P = 64 = 4^3: every axis split twice
  const int image = 256;

  struct Mode {
    const char* name;
    float rot_x, rot_y;
    double paper_bound;  // nonempty receiving rectangles per PE (upper bound)
  };
  const double p = ranks;
  const Mode modes[] = {
      {"normal orthogonal", 0.0f, 0.0f, std::log2(std::cbrt(p))},
      {"rotate one axis", 0.0f, 30.0f, std::log2(std::cbrt(p * p))},
      {"rotate two axes", 25.0f, 30.0f, std::log2(p)},
  };

  std::cout << "Nonempty receiving bounding rectangles vs viewpoint rotation "
            << "(BSBR, P=" << ranks << ", engine_low)\n\n";
  pvr::TextTable table(
      {"view", "paper bound", "measured max", "measured mean", "stages (log P)"});

  const core::BsbrCompositor bsbr;
  int stages = 0;
  while ((1 << stages) < ranks) ++stages;

  for (const Mode& mode : modes) {
    pvr::ExperimentConfig config;
    config.dataset = vol::DatasetKind::EngineLow;
    config.volume_scale = scale;
    config.image_size = image;
    config.ranks = ranks;
    config.rot_x_deg = mode.rot_x;
    config.rot_y_deg = mode.rot_y;
    const pvr::Experiment experiment(config);

    // SPMD run with direct trace access: a nonempty receiving rectangle is
    // an in-phase message carrying more than the 8-byte header.
    const auto& subimages = experiment.subimages();
    const auto& order = experiment.order();
    const auto run = slspvr::mp::Runtime::run(ranks, [&](slspvr::mp::Comm& comm) {
      slspvr::img::Image local = subimages[static_cast<std::size_t>(comm.rank())];
      core::Counters counters;
      (void)bsbr.composite(comm, local, order, counters);
    });

    int max_nonempty = 0;
    double sum_nonempty = 0;
    for (int r = 0; r < ranks; ++r) {
      int nonempty = 0;
      for (const auto& rec : run.trace().received(r)) {
        if (rec.stage >= 1 && rec.tag >= 0 && rec.bytes > 8) ++nonempty;
      }
      max_nonempty = std::max(max_nonempty, nonempty);
      sum_nonempty += nonempty;
    }

    table.add_row({mode.name, pvr::fmt_ms(mode.paper_bound, 1),
                   std::to_string(max_nonempty), pvr::fmt_ms(sum_nonempty / ranks, 2),
                   std::to_string(stages)});
  }
  table.print(std::cout);
  std::cout << "\nRotating the viewpoint spreads subimage footprints, so more stages\n"
               "carry nonempty rectangles — up to the paper's per-mode bounds.\n";
  return 0;
}
