// The complete Figure-1 pipeline, distributed for real: rank 0 owns the
// volume; the partitioning phase ships each PE its ghost brick over the
// message-passing runtime; PEs render from purely local data; compositing
// runs BSBRC; the final image gathers at rank 0. Reports the traffic of
// every phase — the whole sort-last story in one run.
#include <filesystem>
#include <iostream>

#include "core/bsbrc.hpp"
#include "image/compare.hpp"
#include "image/image_io.hpp"
#include "pvr/experiment.hpp"
#include "pvr/report.hpp"

namespace pvr = slspvr::pvr;
namespace vol = slspvr::vol;
namespace img = slspvr::img;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  std::filesystem::create_directories("out");

  pvr::ExperimentConfig config;
  config.dataset = vol::DatasetKind::Head;
  config.volume_scale = scale;
  config.image_size = 384;
  config.ranks = ranks;
  config.distributed_partitioning = true;

  std::cout << "Sort-last pipeline, fully distributed (P=" << ranks << ", head, scale "
            << scale << ")\n\n";

  const pvr::Experiment experiment(config);
  const slspvr::core::BsbrcCompositor bsbrc;
  const auto result = experiment.run(bsbrc);

  const auto reference = experiment.reference();
  img::write_pgm(result.final_image, "out/distributed_head.pgm");

  pvr::TextTable table({"phase", "traffic", "notes"});
  table.add_row({"1. partitioning", pvr::fmt_bytes(experiment.total_partition_bytes()),
                 "ghost bricks shipped from rank 0 (max single PE: " +
                     pvr::fmt_bytes(experiment.max_partition_bytes()) + ")"});
  std::uint64_t compositing_bytes = 0;
  for (const auto b : result.received_bytes_per_rank) compositing_bytes += b;
  table.add_row({"2. rendering", "0", "purely PE-local ray casting"});
  table.add_row({"3. compositing", pvr::fmt_bytes(compositing_bytes),
                 "BSBRC, M_max " + pvr::fmt_bytes(result.m_max) + ", modelled T_total " +
                     pvr::fmt_ms(result.times.total_ms()) + " ms"});
  table.print(std::cout);

  const float err = img::max_abs_diff(result.final_image, reference);
  std::cout << "\nfinal image: out/distributed_head.pgm (max |err| vs reference " << err
            << ")\n";
  return err < 1e-4f ? 0 : 1;
}
