// Compare every compositing method in the library — the four from the paper
// plus the related-work baselines (Ahrens-Painter binary tree, direct send
// full/sparse, Lee's parallel pipeline) — on one dataset and processor
// count, reporting modelled times, M_max and in-process wall clock.
//
// usage: compare_methods [dataset] [ranks] [scale]
//   dataset: engine_low | engine_high | head | cube   (default engine_high)
#include <cstring>
#include <iostream>

#include "pvr/experiment.hpp"
#include "pvr/report.hpp"

namespace pvr = slspvr::pvr;
namespace vol = slspvr::vol;

namespace {

vol::DatasetKind parse_dataset(const char* name) {
  for (const auto kind : vol::kAllDatasets) {
    if (std::strcmp(name, vol::dataset_name(kind)) == 0) return kind;
  }
  std::cerr << "unknown dataset '" << name << "', using engine_high\n";
  return vol::DatasetKind::EngineHigh;
}

}  // namespace

int main(int argc, char** argv) {
  pvr::ExperimentConfig config;
  config.dataset = argc > 1 ? parse_dataset(argv[1]) : vol::DatasetKind::EngineHigh;
  config.ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  config.volume_scale = argc > 3 ? std::atof(argv[3]) : 0.5;
  config.image_size = 384;

  std::cout << "Compositing-method comparison — " << vol::dataset_name(config.dataset)
            << ", P=" << config.ranks << ", " << config.image_size << "x"
            << config.image_size << ", volume scale " << config.volume_scale << "\n\n";

  const pvr::Experiment experiment(config);
  const auto reference = experiment.reference();

  pvr::TextTable table(
      {"method", "T_comp(ms)", "T_comm(ms)", "T_total(ms)", "M_max(bytes)", "wall(ms)",
       "correct"});

  for (const auto& method : pvr::MethodSet::all_methods()) {
    const auto result = experiment.run(*method);
    bool correct = true;
    for (std::int64_t i = 0; i < reference.pixel_count() && correct; ++i) {
      if (std::abs(result.final_image.at_index(i).a - reference.at_index(i).a) > 1e-4f) {
        correct = false;
      }
    }
    table.add_row({result.method, pvr::fmt_ms(result.times.comp_ms),
                   pvr::fmt_ms(result.times.comm_ms), pvr::fmt_ms(result.times.total_ms()),
                   pvr::fmt_bytes(result.m_max), pvr::fmt_ms(result.wall_ms),
                   correct ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n(all methods must agree with the sequential reference; times are the\n"
               " SP2 cost model's critical-path estimate, wall is this machine's clock)\n";
  return 0;
}
