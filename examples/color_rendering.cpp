// Colour classification: the 16-byte RGBA pixel path end to end.
//
// Renders the head sample with a density-rainbow transfer function, runs
// the full sort-last pipeline with BSBRC on 8 PEs, verifies against the
// sequential reference, and writes a colour PPM — demonstrating that the
// compositing methods are channel-agnostic (they only care about the
// blank/non-blank structure and the 16-byte payload).
#include <filesystem>
#include <iostream>

#include "core/bsbrc.hpp"
#include "image/compare.hpp"
#include "image/image_io.hpp"
#include "pvr/experiment.hpp"
#include "pvr/report.hpp"
#include "volume/datasets.hpp"

namespace pvr = slspvr::pvr;
namespace vol = slspvr::vol;
namespace img = slspvr::img;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.4;
  std::filesystem::create_directories("out");

  // Bring-your-own-classification: same head volume, rainbow transfer
  // function instead of the gray preset.
  vol::Dataset dataset = vol::make_dataset(vol::DatasetKind::Head, scale);
  dataset.tf = vol::rainbow_tf(60.0f, 180.0f, 0.5f);
  dataset.name = "head_rainbow";

  pvr::ExperimentConfig config;
  config.image_size = 384;
  config.ranks = 8;
  config.rot_x_deg = 18.0f;
  config.rot_y_deg = 24.0f;

  const pvr::Experiment experiment(dataset, config);
  const slspvr::core::BsbrcCompositor bsbrc;
  const auto result = experiment.run(bsbrc);

  const auto reference = experiment.reference();
  const float err = img::max_abs_diff(result.final_image, reference);

  img::write_ppm(result.final_image, "out/head_rainbow.ppm");
  std::cout << "wrote out/head_rainbow.ppm (" << result.method
            << ", T_total " << pvr::fmt_ms(result.times.total_ms())
            << " ms, max |err| vs reference " << err << ")\n";
  return err < 1e-4f ? 0 : 1;
}
