// Non-power-of-two processor counts — the paper's first future-work item.
//
// "The drawback of the binary-swap compositing method is that the number of
//  processors must be a power of two."
//
// This example runs the pipeline on P = 3, 5, 6, 7, 12 processors: the
// Experiment harness switches to a depth-ordered slab decomposition and
// wraps the method in the fold pre-stage (core/fold.hpp), which collapses
// the extra ranks onto 2^floor(log2 P) leaders with one BSBRC-style
// exchange, then runs plain binary swap among the leaders.
#include <cmath>
#include <filesystem>
#include <iostream>

#include "core/bsbrc.hpp"
#include "image/image_io.hpp"
#include "pvr/experiment.hpp"
#include "pvr/report.hpp"

namespace pvr = slspvr::pvr;
namespace vol = slspvr::vol;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
  std::filesystem::create_directories("out");

  std::cout << "Binary-swap on any processor count via folding (dataset: cube)\n\n";
  pvr::TextTable table({"P", "method", "T_total(ms)", "M_max(bytes)", "max |err| vs ref"});

  const slspvr::core::BsbrcCompositor bsbrc;

  for (const int ranks : {3, 5, 6, 7, 12}) {
    pvr::ExperimentConfig config;
    config.dataset = vol::DatasetKind::Cube;
    config.volume_scale = scale;
    config.image_size = 256;
    config.ranks = ranks;
    const pvr::Experiment experiment(config);

    const auto result = experiment.run(bsbrc);
    const auto reference = experiment.reference();
    float max_err = 0.0f;
    for (std::int64_t i = 0; i < reference.pixel_count(); ++i) {
      max_err = std::max(max_err, std::abs(result.final_image.at_index(i).a -
                                           reference.at_index(i).a));
    }
    table.add_row({std::to_string(ranks), result.method,
                   pvr::fmt_ms(result.times.total_ms()), pvr::fmt_bytes(result.m_max),
                   pvr::fmt_ms(max_err, 6)});
    if (ranks == 7) {
      slspvr::img::write_pgm(result.final_image, "out/cube_p7.pgm");
    }
  }
  table.print(std::cout);
  std::cout << "\nout/cube_p7.pgm holds the P=7 composited image.\n";
  return 0;
}
