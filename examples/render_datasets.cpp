// Figure 7: render the four test samples (engine_low, engine_high, head,
// cube) and write them as PGM images, plus a splatting-rendered variant of
// each — the visual counterpart of the paper's test-sample figure.
#include <filesystem>
#include <iostream>

#include "image/image_io.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "render/splatting.hpp"
#include "volume/datasets.hpp"

namespace vol = slspvr::vol;
namespace img = slspvr::img;
namespace render = slspvr::render;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  const int size = 384;
  std::filesystem::create_directories("out");

  for (const auto kind : vol::kAllDatasets) {
    const auto ds = vol::make_dataset(kind, scale);
    render::OrthoCamera camera(ds.volume.dims(), size, size, 18.0f, 24.0f);

    img::Image ray(size, size);
    render::RenderStats stats;
    render::render_full(ds.volume, ds.tf, camera, ray, {}, &stats);
    const std::string ray_path = "out/fig7_" + ds.name + ".pgm";
    img::write_pgm(ray, ray_path);

    img::Image splat(size, size);
    render::splat_brick(ds.volume, ds.tf, camera, vol::Brick::whole(ds.volume.dims()),
                        splat);
    const std::string splat_path = "out/fig7_" + ds.name + "_splat.pgm";
    img::write_pgm(splat, splat_path);

    const double coverage =
        static_cast<double>(img::count_non_blank(ray, ray.bounds())) / (size * size);
    std::cout << ds.name << ": " << ray_path << " (" << stats.rays << " rays, "
              << stats.samples << " samples, " << static_cast<int>(coverage * 100)
              << "% non-blank) and " << splat_path << "\n";
  }
  return 0;
}
